module Tast = Minijava.Tast

type severity = Error | Warning | Info

type where =
  | Source of Tast.loc
  | Subject of string

type t = {
  severity : severity;
  code : string;
  where : where;
  message : string;
}

let at severity ~code ~loc message = { severity; code; where = Source loc; message }

let about severity ~code ~subject message =
  { severity; code; where = Subject subject; message }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let where_key = function
  | Source l -> (0, l.Tast.file, l.Tast.line, l.Tast.col, "")
  | Subject s -> (1, "", 0, 0, s)

let compare a b =
  let c = Stdlib.compare (where_key a.where) (where_key b.where) in
  if c <> 0 then c
  else
    let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let to_string d =
  let prefix =
    match d.where with
    | Source l -> Tast.loc_string l
    | Subject s -> s
  in
  Printf.sprintf "%s: %s[%s]: %s" prefix (severity_string d.severity) d.code d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let where =
    match d.where with
    | Source l ->
        Printf.sprintf {|"file": "%s", "line": %d, "col": %d|} (json_escape l.Tast.file)
          l.Tast.line l.Tast.col
    | Subject s -> Printf.sprintf {|"subject": "%s"|} (json_escape s)
  in
  Printf.sprintf {|{"severity": "%s", "code": "%s", %s, "message": "%s"}|}
    (severity_string d.severity) (json_escape d.code) where (json_escape d.message)

let list_to_json ds =
  let ds = List.sort compare ds in
  Printf.sprintf {|{"diagnostics": [%s], "errors": %d, "warnings": %d, "infos": %d}|}
    (String.concat ", " (List.map to_json ds))
    (count Error ds) (count Warning ds) (count Info ds)

let summary ds =
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %s"
    (plural (count Error ds) "error")
    (plural (count Warning ds) "warning")
    (plural (count Info ds) "info")
