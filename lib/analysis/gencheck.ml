module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Jungloid = Prospector.Jungloid
module Codegen = Prospector.Codegen

let contains_sub s sub = Prospector.Util.contains ~sub s

let generated_file = "<generated>"

let wrap _h (j : Jungloid.t) =
  let input_ty = Jungloid.input_type j in
  let input =
    match input_ty with
    | Jtype.Void -> None
    | ty -> Some (Codegen.var_name_of_type ty, ty)
  in
  let g = Codegen.generate ?input ~qualified:true j in
  if String.equal g.Codegen.result_var "" then None
  else
    (* Free reference variables are declared-but-unassigned in the emitted
       snippet ("X x; // free variable") — as parameters of the wrapper
       they are properly bound, so the linter checks the real shape. *)
    let body_lines =
      String.split_on_char '\n' g.Codegen.code
      |> List.filter (fun l -> l <> "" && not (contains_sub l "// free variable"))
    in
    let params = (match input with Some p -> [ p ] | None -> []) @ g.Codegen.free_var_names in
    let params_str =
      String.concat ", "
        (List.map (fun (n, ty) -> Jtype.to_string ty ^ " " ^ n) params)
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "package gencheck;\nclass Wrapper {\n";
    Buffer.add_string buf
      (Printf.sprintf "  %s run(%s) {\n"
         (Jtype.to_string (Jungloid.output_type j))
         params_str);
    List.iter (fun l -> Buffer.add_string buf ("    " ^ l ^ "\n")) body_lines;
    Buffer.add_string buf (Printf.sprintf "    return %s;\n  }\n}\n" g.Codegen.result_var);
    Some (Buffer.contents buf)

let subject_of j = Prospector.Jungloid.to_string j

let check h (j : Jungloid.t) =
  match wrap h j with
  | None ->
      [
        Diagnostic.about Diagnostic.Error ~code:"G002" ~subject:(subject_of j)
          "jungloid renders to no statements";
      ]
  | Some src -> (
      match Minijava.Resolve.parse_program ~api:h [ (generated_file, src) ] with
      | exception Japi.Error.E err ->
          [
            Diagnostic.about Diagnostic.Error ~code:"G001" ~subject:(subject_of j)
              (Printf.sprintf "generated code does not re-parse: %s"
                 (Japi.Error.to_string err));
          ]
      | exception Hierarchy.Unknown_type q ->
          [
            Diagnostic.about Diagnostic.Error ~code:"G001" ~subject:(subject_of j)
              (Printf.sprintf "generated code references unknown type %s"
                 (Javamodel.Qname.to_string q));
          ]
      | prog -> Corpuslint.lint_program prog)

let clean h j = Diagnostic.errors (check h j) = []
