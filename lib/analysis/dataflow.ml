module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Hierarchy = Javamodel.Hierarchy
module Tast = Minijava.Tast

(* Physical-identity table for per-use reaching definitions: keys are the
   exact texpr nodes of the resolved tree. *)
module Phys = Hashtbl.Make (struct
  type t = Tast.texpr

  let equal = ( == )

  let hash = Hashtbl.hash
end)

type t = {
  prog : Tast.program;
  flow_sensitive : bool;
  vars : (string * string, Tast.texpr list) Hashtbl.t;
      (* (method key, var) -> producers *)
  reaching : Tast.texpr list Phys.t;
      (* flow-sensitive mode: Tvar use node -> defs reaching it *)
  params : (string * string, (string * Tast.texpr) list) Hashtbl.t;
      (* (method key, param name) -> (caller key, argument expr) *)
  param_names : (string * string, unit) Hashtbl.t;
  fields : (string * string, Tast.texpr list) Hashtbl.t;
      (* (owner class, field name) -> assignments, corpus-wide *)
  corpus_classes : (string, unit) Hashtbl.t;
  by_sig : (string, Tast.tmeth list) Hashtbl.t;
      (* "Owner.name/arity" -> corpus methods declaring that signature *)
  methods : (string, Tast.tmeth) Hashtbl.t;
  casts_rev : (Tast.tmeth * Tast.texpr) list ref;
}

let program t = t.prog

let sig_key owner name arity =
  Printf.sprintf "%s.%s/%d" (Qname.to_string owner) name arity

let push tbl key v =
  let existing = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (v :: existing)

(* Record the producers contributed by one statement, flow-insensitively.
   Field assignments are indexed corpus-wide by (owner, field): a field's
   value may have been stored by any method of any instance. *)
let rec scan_stmt t key (s : Tast.tstmt) =
  match s with
  | Tast.Tlocal (name, _, init) -> Option.iter (fun e -> push t.vars (key, name) e) init
  | Tast.Tassign (name, e) -> push t.vars (key, name) e
  | Tast.Tfield_assign (owner, f, e) ->
      push t.fields (Qname.to_string owner, f.Member.fname) e
  | Tast.Texpr _ | Tast.Treturn _ -> ()
  | Tast.Tif (_, a, b) ->
      List.iter (scan_stmt t key) a;
      List.iter (scan_stmt t key) b
  | Tast.Twhile (_, body) -> List.iter (scan_stmt t key) body

(* Corpus methods a (virtual) call may reach: declared in the receiver's
   static class or any subtype, with matching name and arity. *)
let corpus_callees t ~recv_type ~name ~arity =
  match recv_type with
  | Jtype.Ref q ->
      let h = t.prog.Tast.hierarchy in
      let candidates = Qname.Set.add q (Hierarchy.subtypes h q) in
      Qname.Set.fold
        (fun c acc ->
          match Hashtbl.find_opt t.by_sig (sig_key c name arity) with
          | Some ms -> ms @ acc
          | None -> acc)
        candidates []
      |> List.sort_uniq compare
  | _ -> []

let corpus_static_callee t ~owner ~name ~arity =
  match Hashtbl.find_opt t.by_sig (sig_key owner name arity) with
  | Some (m :: _) -> Some m
  | _ -> None

(* Wire arguments at a call site to the parameters of every possible corpus
   callee; the receiver flows to "this". *)
let scan_call_sites t caller_key body =
  Tast.iter_exprs body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tcall (recv, _, m, args) ->
          let callees =
            corpus_callees t ~recv_type:recv.Tast.ty ~name:m.Member.mname
              ~arity:(List.length args)
          in
          List.iter
            (fun (callee : Tast.tmeth) ->
              let ckey = Tast.method_key callee in
              push t.params (ckey, "this") (caller_key, recv);
              List.iteri
                (fun i (pname, _) ->
                  match List.nth_opt args i with
                  | Some arg -> push t.params (ckey, pname) (caller_key, arg)
                  | None -> ())
                callee.Tast.params)
            callees
      | Tast.Tstatic_call (owner, m, args) -> (
          match
            corpus_static_callee t ~owner ~name:m.Member.mname ~arity:(List.length args)
          with
          | Some callee ->
              let ckey = Tast.method_key callee in
              List.iteri
                (fun i (pname, _) ->
                  match List.nth_opt args i with
                  | Some arg -> push t.params (ckey, pname) (caller_key, arg)
                  | None -> ())
                callee.Tast.params
          | None -> ())
      | _ -> ())

let scan_casts t meth body =
  Tast.iter_exprs body (fun e ->
      match e.Tast.tdesc with
      | Tast.Tcast (to_, inner)
        when Jtype.is_reference to_ && Jtype.is_reference inner.Tast.ty ->
          t.casts_rev := (meth, e) :: !(t.casts_rev)
      | _ -> ())

(* Flow-sensitive prepass: walk each body in order, tracking the current
   reaching definitions of each local; record, at every Tvar use, the defs
   that reach it. Branch joins merge; loops conservatively merge the body's
   outgoing env into the incoming one (one extra pass). *)
let record_reaching t (m : Tast.tmeth) =
  let module SM = Map.Make (String) in
  let record_uses env (e : Tast.texpr) =
    Tast.iter_exprs [ Tast.Texpr e ] (fun sub ->
        match sub.Tast.tdesc with
        | Tast.Tvar v -> (
            match SM.find_opt v env with
            | Some defs -> Phys.replace t.reaching sub defs
            | None -> ())
        | _ -> ())
  in
  let merge a b =
    SM.union (fun _ x y -> Some (List.sort_uniq compare (x @ y))) a b
  in
  let rec stmts env body =
    List.fold_left
      (fun env s ->
        match s with
        | Tast.Tlocal (name, _, init) ->
            Option.iter (record_uses env) init;
            (match init with
            | Some e -> SM.add name [ e ] env
            | None -> env)
        | Tast.Tassign (name, e) ->
            record_uses env e;
            SM.add name [ e ] env
        | Tast.Tfield_assign (_, _, e) ->
            record_uses env e;
            env
        | Tast.Texpr e ->
            record_uses env e;
            env
        | Tast.Treturn (Some e) ->
            record_uses env e;
            env
        | Tast.Treturn None -> env
        | Tast.Tif (c, a, b) ->
            record_uses env c;
            let ea = stmts env a and eb = stmts env b in
            merge ea eb
        | Tast.Twhile (c, body) ->
            (* two passes so uses inside the loop see defs from a previous
               iteration as well *)
            let once = stmts env body in
            let env' = merge env once in
            record_uses env' c;
            let again = stmts env' body in
            merge env' again)
      env body
  in
  ignore (stmts SM.empty m.Tast.body)

let build ?(flow_sensitive = false) (prog : Tast.program) =
  let t =
    {
      prog;
      flow_sensitive;
      reaching = Phys.create 256;
      vars = Hashtbl.create 256;
      fields = Hashtbl.create 64;
      corpus_classes = Hashtbl.create 64;
      params = Hashtbl.create 256;
      param_names = Hashtbl.create 256;
      by_sig = Hashtbl.create 256;
      methods = Hashtbl.create 256;
      casts_rev = ref [];
    }
  in
  List.iter
    (fun (m : Tast.tmeth) ->
      let key = Tast.method_key m in
      Hashtbl.replace t.methods key m;
      Hashtbl.replace t.corpus_classes (Qname.to_string m.Tast.owner) ();
      push t.by_sig (sig_key m.Tast.owner m.Tast.name (List.length m.Tast.params)) m;
      List.iter (fun (p, _) -> Hashtbl.replace t.param_names (key, p) ()) m.Tast.params;
      if not m.Tast.static then Hashtbl.replace t.param_names (key, "this") ())
    prog.Tast.methods;
  List.iter
    (fun (m : Tast.tmeth) ->
      let key = Tast.method_key m in
      List.iter (scan_stmt t key) m.Tast.body;
      scan_call_sites t key m.Tast.body;
      scan_casts t m m.Tast.body;
      if flow_sensitive then record_reaching t m)
    prog.Tast.methods;
  t

let is_flow_sensitive t = t.flow_sensitive

let reaching_defs t use =
  if not t.flow_sensitive then None else Phys.find_opt t.reaching use

let var_producers t ~method_key ~var =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.vars (method_key, var)))

let param_producers t ~method_key ~var =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.params (method_key, var)))

let is_param t ~method_key ~var = Hashtbl.mem t.param_names (method_key, var)

let find_method t ~key = Hashtbl.find_opt t.methods key

let field_producers t ~owner ~field =
  List.rev
    (Option.value ~default:[] (Hashtbl.find_opt t.fields (Qname.to_string owner, field)))

let is_corpus_class t owner = Hashtbl.mem t.corpus_classes (Qname.to_string owner)

let casts t = List.rev !(t.casts_rev)
