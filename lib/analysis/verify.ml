module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Elem = Prospector.Elem
module Jungloid = Prospector.Jungloid

(* Signature identity modulo parameter names and visibility: the verifier
   accepts a member iff some declaration carries the same call shape. *)
let same_params a b =
  List.length a = List.length b
  && List.for_all2 (fun (_, x) (_, y) -> Jtype.equal x y) a b

let same_meth (a : Member.meth) (b : Member.meth) =
  String.equal a.Member.mname b.Member.mname
  && same_params a.Member.params b.Member.params
  && Jtype.equal a.Member.ret b.Member.ret
  && Bool.equal a.Member.mstatic b.Member.mstatic

let same_field (a : Member.field) (b : Member.field) =
  String.equal a.Member.fname b.Member.fname
  && Jtype.equal a.Member.ftype b.Member.ftype
  && Bool.equal a.Member.fstatic b.Member.fstatic

(* The declaration of [q] followed by those of its strict supertypes, so an
   inherited member also counts as declared "in" q. *)
let decl_chain h q =
  match Hierarchy.find_opt h q with
  | None -> []
  | Some d ->
      d
      :: (Hierarchy.supers h q |> Qname.Set.elements
         |> List.filter_map (Hierarchy.find_opt h))

let is_interface_ref h ty =
  match ty with
  | Jtype.Ref q -> (
      match Hierarchy.find_opt h q with
      | Some d -> Decl.is_interface d
      | None -> false)
  | _ -> false

let check h (j : Jungloid.t) =
  let diags = ref [] in
  let step_subject i e = Printf.sprintf "step %d (%s)" i (Elem.describe e) in
  let report i e sev code msg =
    diags := Diagnostic.about sev ~code ~subject:(step_subject i e) msg :: !diags
  in
  let error i e = report i e Diagnostic.Error
  and warning i e = report i e Diagnostic.Warning
  and info i e = report i e Diagnostic.Info in
  (* An owner whose declaration the loader invented (or dropped) cannot
     vouch for members: downgrade to an info rather than reject chains
     mined against a trimmed model. *)
  let opaque_owner i e owner =
    match Hierarchy.find_opt h owner with
    | None ->
        info i e "J009"
          (Printf.sprintf "%s is not declared in the model; member unverifiable"
             (Qname.to_string owner));
        true
    | Some d when d.Decl.synthetic ->
        info i e "J009"
          (Printf.sprintf "%s is opaque (synthetic); member unverifiable"
             (Qname.to_string owner));
        true
    | Some _ -> false
  in
  let check_visibility i e =
    match Elem.visibility e with
    | Some Member.Public | None -> ()
    | Some vis ->
        let name =
          match vis with
          | Member.Public -> "public"
          | Member.Protected -> "protected"
          | Member.Private -> "private"
          | Member.Package -> "package-private"
        in
        warning i e "J006" (Printf.sprintf "references a %s member" name)
  in
  let check_member i (e : Elem.t) =
    match e with
    | Elem.Field_access { owner; field } ->
        if not (opaque_owner i e owner) then
          if
            not
              (List.exists
                 (fun d -> List.exists (same_field field) d.Decl.fields)
                 (decl_chain h owner))
          then
            error i e "J002"
              (Printf.sprintf "no field '%s : %s' in %s" field.Member.fname
                 (Jtype.to_string field.Member.ftype)
                 (Qname.to_string owner))
    | Elem.Static_call { owner; meth; _ } | Elem.Instance_call { owner; meth; _ } ->
        if not (opaque_owner i e owner) then
          if
            not
              (List.exists
                 (fun d -> List.exists (same_meth meth) d.Decl.methods)
                 (decl_chain h owner))
          then
            error i e "J002"
              (Printf.sprintf "no method '%s' in %s"
                 (Member.meth_signature_string meth)
                 (Qname.to_string owner))
    | Elem.Ctor_call { owner; ctor; _ } -> (
        match Hierarchy.find_opt h owner with
        | None | Some { Decl.synthetic = true; _ } -> ignore (opaque_owner i e owner)
        | Some d ->
            let declared =
              List.exists
                (fun (c : Member.ctor) -> same_params ctor.Member.cparams c.Member.cparams)
                d.Decl.ctors
            in
            (* A class that declares no constructor has the implicit
               nullary default constructor. *)
            let default_ok =
              d.Decl.ctors = [] && ctor.Member.cparams = []
              && not (Decl.is_interface d)
            in
            if not (declared || default_ok) then
              error i e "J002"
                (Printf.sprintf "no constructor of %s with %d parameters"
                   (Qname.to_string owner)
                   (List.length ctor.Member.cparams));
            if Decl.is_interface d then
              error i e "J008"
                (Printf.sprintf "%s is an interface and cannot be constructed"
                   (Qname.to_string owner))
            else if d.Decl.abstract then
              warning i e "J008"
                (Printf.sprintf "%s is abstract; the constructor call cannot appear as-is"
                   (Qname.to_string owner)))
    | Elem.Widen _ | Elem.Downcast _ -> ()
  in
  let check_slot i (e : Elem.t) =
    let arity_ok params = function
      | Elem.Param k -> k >= 0 && k < List.length params
      | Elem.Receiver | Elem.No_input -> true
    in
    match e with
    | Elem.Static_call { meth; input; _ } ->
        if input = Elem.Receiver then
          error i e "J005" "a static call has no receiver input"
        else if not (arity_ok meth.Member.params input) then
          error i e "J005" "parameter input slot out of range"
    | Elem.Ctor_call { ctor; input; _ } ->
        if input = Elem.Receiver then
          error i e "J005" "a constructor call has no receiver input"
        else if not (arity_ok ctor.Member.cparams input) then
          error i e "J005" "parameter input slot out of range"
    | Elem.Instance_call { meth; input; _ } ->
        if input = Elem.No_input then
          error i e "J005" "an instance call needs a receiver or parameter input"
        else if not (arity_ok meth.Member.params input) then
          error i e "J005" "parameter input slot out of range"
    | Elem.Field_access _ | Elem.Widen _ | Elem.Downcast _ -> ()
  in
  let check_conversion i (e : Elem.t) =
    match e with
    | Elem.Widen { from_; to_ } ->
        if Jtype.equal from_ to_ then
          warning i e "J007" "widening conversion between equal types is a no-op"
        else if not (Hierarchy.is_subtype h from_ to_) then
          error i e "J003"
            (Printf.sprintf "%s does not widen to %s" (Jtype.to_string from_)
               (Jtype.to_string to_))
    | Elem.Downcast { from_; to_ } ->
        if Jtype.equal from_ to_ then
          warning i e "J007" "downcast to the same type is a no-op"
        else if
          not
            (Hierarchy.is_subtype h to_ from_
            || is_interface_ref h from_ || is_interface_ref h to_)
        then
          error i e "J004"
            (Printf.sprintf "%s is unrelated to the static type %s"
               (Jtype.to_string to_) (Jtype.to_string from_))
    | _ -> ()
  in
  (* [Elem.input_type] indexes the parameter list, so it can only be asked
     after the slot check passed. *)
  let input_ty_opt e = try Some (Elem.input_type e) with _ -> None in
  let rec steps i prev = function
    | [] -> ()
    | e :: rest ->
        check_slot i e;
        (match input_ty_opt e with
        | Some it ->
            if not (Jtype.equal prev it) then
              error i e "J001"
                (Printf.sprintf "expects input %s but the previous step produces %s"
                   (Jtype.to_string it) (Jtype.to_string prev))
        | None -> ());
        check_member i e;
        check_conversion i e;
        check_visibility i e;
        steps (i + 1) (Elem.output_type e) rest
  in
  steps 0 (Jungloid.input_type j) j.Jungloid.elems;
  List.sort Diagnostic.compare !diags

let sound h j = Diagnostic.errors (check h j) = []
