(** API-model and signature-graph lint: structural checks on the loaded
    hierarchy and on the jungloid graph built from it, catching a broken or
    hand-edited model before the search runs over it.

    Hierarchy codes: [A001] reference to an undeclared (opaque) type
    (info — a trimmed model legitimately mentions types it does not carry);
    [A002] duplicate member declaration; [A003] interface declaring
    constructors or instance fields; [A004] supertype-clause kind mismatch
    (class extending an interface, implementing a class, ...); [A005]
    [void] used as a parameter or field type.

    Graph codes: [A010] widening edge whose endpoints are not in the
    subtype relation; [A011] self-loop conversion edge; [A012] duplicate
    edge; [A013] orphan type node with no incident edge (info); [A014] edge
    whose endpoint node types disagree with its elementary jungloid. *)

val lint_hierarchy : Javamodel.Hierarchy.t -> Diagnostic.t list

val lint_graph : Javamodel.Hierarchy.t -> Prospector.Graph.t -> Diagnostic.t list

val lint :
  ?graph:Prospector.Graph.t -> Javamodel.Hierarchy.t -> Diagnostic.t list
(** {!lint_hierarchy} plus, when a graph is given, {!lint_graph}. *)
