module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Tast = Minijava.Tast

(* One linear pass over a body yields, per variable, an ordered event list.
   [guarded] marks events under an [if] or [while] (may not execute);
   [looped] marks events under a [while] (may re-execute) — both make the
   order-sensitive rules stand down rather than guess. *)
type ev = {
  kind : [ `Def | `Use ];
  eloc : Tast.loc;
  guarded : bool;
  looped : bool;
}

type walk = {
  events : (string, ev list) Hashtbl.t;  (* reversed *)
  mutable decls : (string * Tast.loc) list;  (* reversed, in decl order *)
}

let push w v ev =
  Hashtbl.replace w.events v (ev :: Option.value ~default:[] (Hashtbl.find_opt w.events v))

let expr_uses w ~guarded ~looped e =
  Tast.iter_exprs [ Tast.Texpr e ] (fun sub ->
      match sub.Tast.tdesc with
      | Tast.Tvar v -> push w v { kind = `Use; eloc = sub.Tast.loc; guarded; looped }
      | _ -> ())

let rec walk_stmt w ~guarded ~looped mloc (s : Tast.tstmt) =
  match s with
  | Tast.Tlocal (name, _, init) ->
      let dloc = match init with Some e -> e.Tast.loc | None -> mloc in
      w.decls <- (name, dloc) :: w.decls;
      Option.iter
        (fun e ->
          expr_uses w ~guarded ~looped e;
          push w name { kind = `Def; eloc = e.Tast.loc; guarded; looped })
        init
  | Tast.Tassign (name, e) ->
      expr_uses w ~guarded ~looped e;
      push w name { kind = `Def; eloc = e.Tast.loc; guarded; looped }
  | Tast.Tfield_assign (_, _, e) | Tast.Texpr e | Tast.Treturn (Some e) ->
      expr_uses w ~guarded ~looped e
  | Tast.Treturn None -> ()
  | Tast.Tif (c, a, b) ->
      expr_uses w ~guarded ~looped c;
      List.iter (walk_stmt w ~guarded:true ~looped mloc) a;
      List.iter (walk_stmt w ~guarded:true ~looped mloc) b
  | Tast.Twhile (c, body) ->
      expr_uses w ~guarded ~looped:true c;
      List.iter (walk_stmt w ~guarded:true ~looped:true mloc) body

let walk (m : Tast.tmeth) =
  let w = { events = Hashtbl.create 16; decls = [] } in
  List.iter (walk_stmt w ~guarded:false ~looped:false m.Tast.mloc) m.Tast.body;
  Hashtbl.iter (fun v evs -> Hashtbl.replace w.events v (List.rev evs)) w.events;
  w.decls <- List.rev w.decls;
  w

let is_interface_ref h ty =
  match ty with
  | Jtype.Ref q -> (
      match Hierarchy.find_opt h q with
      | Some d -> Decl.is_interface d
      | None -> false)
  | _ -> false

let known_ref h ty =
  match ty with
  | Jtype.Ref q -> (
      match Hierarchy.find_opt h q with
      | Some d -> not d.Decl.synthetic
      | None -> false)
  | Jtype.Array _ -> true
  | _ -> false

let lint_method df (m : Tast.tmeth) =
  let diags = ref [] in
  let report sev code loc msg = diags := Diagnostic.at sev ~code ~loc msg :: !diags in
  let key = Tast.method_key m in
  let w = walk m in
  let events v = Option.value ~default:[] (Hashtbl.find_opt w.events v) in
  (* C001 / C002: definite-assignment approximations. *)
  Hashtbl.iter
    (fun v evs ->
      if not (Dataflow.is_param df ~method_key:key ~var:v) then begin
        let defs = List.filter (fun e -> e.kind = `Def) evs in
        let uses = List.filter (fun e -> e.kind = `Use) evs in
        match (defs, uses) with
        | [], first_use :: _ ->
            report Diagnostic.Error "C001" first_use.eloc
              (Printf.sprintf "'%s' is used but never assigned in %s" v key)
        | _ :: _, _ -> (
            match evs with
            | { kind = `Use; looped = false; eloc; _ } :: _ ->
                report Diagnostic.Warning "C002" eloc
                  (Printf.sprintf "'%s' is used before its first assignment" v)
            | _ -> ())
        | _ -> ()
      end)
    w.events;
  (* C003: unconditional stores that are overwritten or never read. *)
  Hashtbl.iter
    (fun v evs ->
      if not (Dataflow.is_param df ~method_key:key ~var:v) then
        let has_use = List.exists (fun e -> e.kind = `Use) evs in
        let rec scan = function
          | [] -> ()
          | ({ kind = `Def; guarded = false; looped = false; eloc } as _d) :: rest ->
              let dead =
                match rest with
                | { kind = `Def; guarded = false; looped = false; _ } :: _ -> true
                | _ -> has_use && not (List.exists (fun e -> e.kind = `Use) rest)
              in
              if dead then
                report Diagnostic.Warning "C003" eloc
                  (Printf.sprintf "value assigned to '%s' is never read" v);
              scan rest
          | _ :: rest -> scan rest
        in
        scan evs)
    w.events;
  (* C004: declared locals that are never read. *)
  List.iter
    (fun (v, dloc) ->
      if not (List.exists (fun e -> e.kind = `Use) (events v)) then
        report Diagnostic.Warning "C004" dloc
          (Printf.sprintf "local '%s' is never used" v))
    w.decls;
  (* C005 / C006: the cast inventory shared with the miner. *)
  let h = (Dataflow.program df).Tast.hierarchy in
  List.iter
    (fun ((owner : Tast.tmeth), (cast : Tast.texpr)) ->
      if String.equal (Tast.method_key owner) key then
        match cast.Tast.tdesc with
        | Tast.Tcast (to_, inner) ->
            let from_ = inner.Tast.ty in
            if Jtype.equal from_ to_ then
              report Diagnostic.Info "C006" cast.Tast.loc
                (Printf.sprintf "cast to the expression's own type %s"
                   (Jtype.simple_string to_))
            else if
              known_ref h from_ && known_ref h to_
              && (not (Hierarchy.is_subtype h from_ to_))
              && (not (Hierarchy.is_subtype h to_ from_))
              && (not (is_interface_ref h from_))
              && not (is_interface_ref h to_)
            then
              report Diagnostic.Error "C005" cast.Tast.loc
                (Printf.sprintf "cast to %s, unrelated to the static type %s"
                   (Jtype.to_string to_) (Jtype.to_string from_))
        | _ -> ())
    (Dataflow.casts df);
  List.sort Diagnostic.compare !diags

let method_has_errors df m = Diagnostic.errors (lint_method df m) <> []

let lint_program (prog : Tast.program) =
  let df = Dataflow.build prog in
  List.concat_map (lint_method df) prog.Tast.methods
