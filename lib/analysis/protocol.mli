(** Mined typestate protocols: per-API-type call-order automata learned
    from corpus receiver sequences.

    The miner ([Mining.Protomine]) reconstructs, for every tracked receiver
    in the corpus, the sequence of methods called on it, in evaluation
    order, together with how the object was produced (a cast, a producing
    call, a constructor, a field read, a parameter). This module holds the
    shared currency: the {!sequence} shape the miner emits and the linter
    consumes, and the learned {!model} — one automaton per receiver type
    whose states are abstract object phases (fresh, after method [m]) and
    whose transitions carry Laplace-smoothed method-pair probabilities.

    {b Deviance threshold.} With [V] distinct observed methods, a
    transition out of phase [m] seen [c] times among [n] observations has
    Laplace probability [(c+1)/(n+V+1)]. A never-seen transition ([c = 0])
    is called {e deviant} exactly when its smoothed probability falls to
    the floor [1/(n+V+1)] with [n >= min_evidence] — i.e. at or below the
    probability a fresh, evidence-free phase would assign
    ([1/(min_evidence+V+1)]). An empty corpus has [n = 0] everywhere, so
    nothing is ever deviant: the model degenerates to accept-everything,
    and thresholds need no tuning per corpus (the knob is derived from the
    smoothing floor, not fitted). *)

module Tast = Minijava.Tast

(** How a tracked object came to exist. [Cast] marks downcast-produced
    receivers (the pattern behind [P006]); [Param] marks method parameters
    with no known corpus caller; [Unknown] is an unresolvable origin. *)
type producer =
  | Cast
  | Call of string  (** producing call, ["Owner.name/arity"] *)
  | New of string  (** constructor, owner class *)
  | Field of string  (** field read, ["Owner.fname"] *)
  | Param
  | Unknown

val producer_string : producer -> string

type event = {
  ev_meth : string;  (** ["name/arity"] — the automaton alphabet *)
  ev_loc : Tast.loc;  (** call site, for diagnostics *)
  ev_void : bool;  (** the call returns [void] *)
  ev_discarded : bool;  (** statement position: the result is dropped *)
}

type sequence = {
  seq_type : string;  (** dotted static type of the receiver *)
  seq_producer : producer;
  seq_loc : Tast.loc;  (** where the object is produced (or first used) *)
  seq_events : event list;  (** calls on the receiver, evaluation order *)
}

type automaton

type model

val empty : model
(** The accept-everything model (what an empty corpus learns). *)

val default_min_evidence : int
(** [2] — the smallest [n] at which an observation is corroborated at all,
    i.e. the first point where the floor comparison in the module docstring
    separates "never seen despite repeated evidence" from "the phase itself
    was seen once". *)

val learn : ?min_evidence:int -> sequence list -> model
(** One automaton per distinct [seq_type]; sequences with no events are
    counted (they are evidence the type is used) but add no transitions. *)

val min_evidence : model -> int

val automaton : model -> string -> automaton option

val modeled_types : model -> string list
(** Types with at least one observed sequence, sorted. *)

val modeled : model -> tname:string -> bool
(** The type has at least [min_evidence] observed sequences — below that,
    every check on it is vacuously satisfied. *)

val sequence_count : model -> int
(** Total observed sequences across all automata. *)

val transition_count : model -> int
(** Total distinct (phase, method) transitions across all automata. *)

val observations : model -> tname:string -> int
(** Observed sequences for one type; [0] when unmodeled. *)

val known_method : model -> tname:string -> meth:string -> bool
(** The corpus called [meth] on this type at least once. *)

val methods : model -> tname:string -> (string * int) list
(** Observed methods of the type with occurrence counts, sorted by name. *)

val occurrence_count : model -> tname:string -> meth:string -> int
(** How often the corpus called [meth] on the type. *)

val start_count : model -> tname:string -> meth:string -> int
(** How many sequences begin with [meth]. *)

val end_count : model -> tname:string -> meth:string -> int
(** How many occurrences of [meth] close their sequence. *)

val pair_count : model -> tname:string -> prev:string -> next:string -> int
(** How often [next] directly follows [prev]. *)

val start_prob : model -> tname:string -> meth:string -> float
(** Laplace-smoothed probability that a fresh object's first call is
    [meth]; [1.0] when the type is unmodeled. *)

val pair_prob : model -> tname:string -> prev:string -> next:string -> float
(** Laplace-smoothed probability of calling [next] directly after [prev];
    [1.0] when the type is unmodeled. *)

val start_deviant : model -> tname:string -> meth:string -> bool
(** [meth] is known on the type, the type has [min_evidence] sequences,
    and no corpus sequence ever started with [meth]. *)

val pair_deviant : model -> tname:string -> prev:string -> next:string -> bool
(** Both methods are known, [prev] has [min_evidence] observations, and the
    corpus never called [next] directly after [prev]. *)

val must_follow : model -> tname:string -> meth:string -> string option
(** [Some succ] when ending the object's life at [meth] is deviant: [meth]
    has [min_evidence] observations and {e every} one of them is followed
    by another call on the same receiver. [succ] is the most common
    successor (ties break lexicographically). *)

val always_terminal : model -> tname:string -> meth:string -> bool
(** [meth] has [min_evidence] observations and every one of them ends its
    receiver's sequence — the object is done after [meth]. *)

val start_suggestion : model -> tname:string -> string option
(** The most common first call on a fresh object of the type. *)

val common_successor : model -> tname:string -> meth:string -> string option
(** The most common call directly after [meth], when any was observed. *)
