(** Protocol miner: reconstructs per-receiver call sequences from the
    corpus and learns the typestate model ([Analysis.Protocol]).

    Reconstruction rides on the same [Dataflow] indexes as the jungloid
    slicer — receiver-tracked (one sequence per local/parameter receiver,
    plus anonymous sequences for inline receiver chains like
    [a.b().c()]), interprocedural through corpus calls (a variable passed
    as an argument to a corpus method inherits the calls that method makes
    on the parameter), and widen-transparent (the typed AST already
    resolves every call against the receiver's static type, so implicit
    widening never splits a sequence — same as [Usage]). *)

module Tast = Minijava.Tast
module Protocol = Analysis.Protocol

val sequences : Analysis.Dataflow.t -> Protocol.sequence list
(** Every reconstructed receiver sequence of the corpus behind the index,
    in deterministic (method, evaluation) order. A method parameter that
    has corpus callers yields no standalone sequence — its events are
    spliced into each caller's argument instead, so nothing is counted
    twice. *)

val of_dataflow : ?min_evidence:int -> Analysis.Dataflow.t -> Protocol.model
(** [Protocol.learn] over {!sequences} — for callers that already built the
    index. *)

val mine : ?min_evidence:int -> Tast.program -> Protocol.model
(** Build the index and learn the model in one step. *)
