(** Example-jungloid extraction (Section 4.2).

    For every cast in the corpus, the extractor walks {e backward} along
    flow-insensitive data-flow paths from the cast's operand, collecting
    elementary jungloids, until it reaches a zero-argument expression (a
    constructor or static call with no reference arguments, a static field)
    or a variable with no producers (e.g. an uncalled method's parameter —
    the example then starts at that variable's type, like Figure 5's
    [IDebugView] input). API calls become elementary jungloids; corpus
    (client) methods are never elementary — they are inlined through their
    return expressions, with parameters wired context-insensitively to every
    call site. The walk branches at calls (receiver or any reference
    argument may be the data-flow input), so the number of examples per cast
    is capped ([max_per_cast]) exactly as the paper caps its
    gigabytes-of-examples blowup.

    Extracted sequences are normalized: widening conversions are inserted
    wherever a value of a subtype flows into a supertype position, so every
    example is a well-typed jungloid ending in its downcast. *)

module Jtype = Javamodel.Jtype
module Elem = Prospector.Elem

type example = {
  input : Jtype.t;  (** [Void] or the type of the terminal variable *)
  elems : Elem.t list;  (** non-empty; the last elem is the downcast *)
  origin : string;  (** "method-key:cast-N", for typestate provenance *)
}

val example_well_typed : Javamodel.Hierarchy.t -> example -> bool
(** Sanity predicate used by tests and the property suite. A thin wrapper
    over [Analysis.Verify.sound]: the example (as a jungloid) must pass the
    analyzer's full re-typecheck, not just compose. *)

val extract :
  ?max_per_cast:int ->
  ?max_len:int ->
  ?lint_gate:bool ->
  ?pool:Prospector_parallel.Pool.t ->
  Dataflow.t ->
  example list
(** All example jungloids ending in casts, at most [max_per_cast] (default
    64) per cast expression and at most [max_len] (default 12) non-widening
    elementary jungloids long. With [lint_gate] (default [true]) cast sites
    inside methods carrying error-severity corpus lint are skipped — broken
    client code is not evidence of a working conversion.

    [?pool] fans the per-site backward walks out across domains: sites are
    independent (each owns its extraction budget; the data-flow indexes are
    read-only after construction) and results keep site order, so the
    example list — and the graph mined from it — is identical at any job
    count. *)

val extract_for_arg :
  ?max_per_cast:int ->
  ?max_len:int ->
  ?lint_gate:bool ->
  ?pool:Prospector_parallel.Pool.t ->
  Dataflow.t ->
  is_target:(Javamodel.Jtype.t -> bool) ->
  example list
(** The Section 4.3 generalization of the machinery: extract examples ending
    in a call whose {e input parameter} type satisfies [is_target]
    (e.g. equals [Object] or [String]) — those parameter positions play the
    role of downcasts. The final elem of each example is the call with
    [input = Param i]. *)
