let log_src = Logs.Src.create "prospector.mining" ~doc:"jungloid mining"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Graph = Prospector.Graph
module Elem = Prospector.Elem

type stats = {
  casts_in_corpus : int;
  examples_extracted : int;
  examples_after_generalization : int;
  edges_added : int;
  typestate_nodes_added : int;
}

let add_examples g examples =
  let edges0 = Graph.edge_count g in
  let ts = ref 0 in
  List.iter
    (fun (ex : Extract.example) ->
      let entry = Graph.ensure_type_node g ex.Extract.input in
      let rec splice src = function
        | [] -> ()
        | [ last ] ->
            let dst = Graph.ensure_type_node g (Elem.output_type last) in
            Graph.add_edge g ~src last ~dst
        | e :: rest ->
            let dst =
              Graph.add_typestate g ~underlying:(Elem.output_type e)
                ~origin:ex.Extract.origin
            in
            incr ts;
            Graph.add_edge g ~src e ~dst;
            splice dst rest
      in
      splice entry ex.Extract.elems)
    examples;
  (Graph.edge_count g - edges0, !ts)

(* The synthesis surface is public members only (plus protected when the
   include_protected extension is on): an example whose chain calls a
   non-public member would generate uncompilable client code. *)
let visible ~include_protected (ex : Extract.example) =
  List.for_all
    (fun e ->
      match Elem.visibility e with
      | None | Some Javamodel.Member.Public -> true
      | Some Javamodel.Member.Protected -> include_protected
      | Some (Javamodel.Member.Private | Javamodel.Member.Package) -> false)
    ex.Extract.elems

let examples ?max_per_cast ?max_len ?(include_protected = false)
    ?(flow_sensitive = false) ?pool prog =
  let df = Dataflow.build ~flow_sensitive prog in
  List.filter (visible ~include_protected)
    (Extract.extract ?max_per_cast ?max_len ?pool df)

let enrich ?max_per_cast ?max_len ?(generalize = true) ?min_keep
    ?(include_protected = false) ?(flow_sensitive = false) ?pool ?on_examples g
    prog =
  let df = Dataflow.build ~flow_sensitive prog in
  let casts = List.length (Dataflow.casts df) in
  let examples =
    List.filter (visible ~include_protected)
      (Extract.extract ?max_per_cast ?max_len ?pool df)
  in
  (match on_examples with Some f -> f examples | None -> ());
  let final =
    if generalize then Generalize.run ?min_keep examples else examples
  in
  let edges_added, typestate_nodes_added = add_examples g final in
  Log.info (fun m ->
      m "mined %d casts: %d examples, %d after generalization, %d edges and %d typestates added"
        casts (List.length examples) (List.length final) edges_added
        typestate_nodes_added);
  {
    casts_in_corpus = casts;
    examples_extracted = List.length examples;
    examples_after_generalization = List.length final;
    edges_added;
    typestate_nodes_added;
  }
