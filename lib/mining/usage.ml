module Elem = Prospector.Elem

type t = {
  counts : (Elem.t, int) Hashtbl.t;
  pairs : (Elem.t * Elem.t, int) Hashtbl.t;
  total : int;
}

let empty = { counts = Hashtbl.create 1; pairs = Hashtbl.create 1; total = 0 }

let bump tbl key =
  let c = match Hashtbl.find_opt tbl key with Some c -> c | None -> 0 in
  Hashtbl.replace tbl key (c + 1)

let of_examples examples =
  let counts = Hashtbl.create 256 in
  let pairs = Hashtbl.create 256 in
  let total = ref 0 in
  List.iter
    (fun (ex : Extract.example) ->
      let calls = List.filter (fun e -> not (Elem.is_widen e)) ex.Extract.elems in
      List.iter
        (fun e ->
          bump counts e;
          incr total)
        calls;
      let rec pairwise = function
        | a :: (b :: _ as rest) ->
            bump pairs (a, b);
            pairwise rest
        | [ _ ] | [] -> ()
      in
      pairwise calls)
    examples;
  { counts; pairs; total = !total }

(* Incremental corpus growth for live reload: fold more examples into an
   existing model without re-extracting the whole corpus. Counting is
   additive over examples, so merging into copied tables is definitionally
   [of_examples (old_examples @ new_examples)]. *)
let add_examples t examples =
  let fresh = of_examples examples in
  let counts = Hashtbl.copy t.counts in
  let pairs = Hashtbl.copy t.pairs in
  Hashtbl.iter
    (fun e c ->
      let prev = match Hashtbl.find_opt counts e with Some p -> p | None -> 0 in
      Hashtbl.replace counts e (prev + c))
    fresh.counts;
  Hashtbl.iter
    (fun p c ->
      let prev = match Hashtbl.find_opt pairs p with Some v -> v | None -> 0 in
      Hashtbl.replace pairs p (prev + c))
    fresh.pairs;
  { counts; pairs; total = t.total + fresh.total }

let count t e = match Hashtbl.find_opt t.counts e with Some c -> c | None -> 0

let pair_count t a b =
  match Hashtbl.find_opt t.pairs (a, b) with Some c -> c | None -> 0

let total t = t.total

let distinct t = Hashtbl.length t.counts

(* cost = -log P normalized by the unseen-edge floor, in cost_scale
   fixed-point units: an edge the corpus never used costs exactly one paper
   unit (cost_scale), and seen edges are discounted in proportion to
   log-frequency. The normalization keeps mined costs commensurate with the
   paper's other charges (one unit per call, freevar_cost per free
   variable): without it, -log(1/denom) makes every unseen edge worth
   several paper units and chain length swamps the rest of the key. The
   float rounds through a 1/cost_scale grid, which absorbs any last-ulp
   libm variation far below the grid step. *)
let neg_log_p ~denom c = -.log (float_of_int (c + 1) /. float_of_int denom)

let denom t = t.total + Hashtbl.length t.counts + 1

let edge_cost t e =
  let denom = denom t in
  if Elem.is_widen e || denom <= 1 then 0
  else
    int_of_float
      (Float.round
         (float_of_int Elem.cost_scale
         *. neg_log_p ~denom (count t e)
         /. neg_log_p ~denom 0))

let floor_cost t = if denom t <= 1 then 0 else Elem.cost_scale
