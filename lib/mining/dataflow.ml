(* The def-use index moved to [Analysis.Dataflow] so the corpus linter can
   share it without a dependency cycle; re-exported here so existing
   [Mining.Dataflow] callers are unaffected. *)
include Analysis.Dataflow
