(** Usage statistics mined from the corpus, and the probabilistic edge-cost
    model they induce (the [--ranking mined] mode).

    The paper ranks jungloids by a static length/crossings/specificity
    rule; follow-up work (probabilistic API mining, SWIM) shows that call
    frequencies mined from client code rank API sequences better. This
    module counts how often each elementary jungloid occurs in the
    corpus's extracted examples — the exact def-use traversal of
    {!Extract} — plus the co-occurrence of consecutive pairs, and smooths
    the unigram frequencies into non-negative additive edge costs:

    {v cost(e) = -log P(e) / -log P(unseen),
       P(e) = (count(e) + 1) / (N + V + 1) v}

    Laplace smoothing over the [N] mined occurrences and [V] distinct
    elems, with one unit of probability mass reserved for unseen elems, so
    every cost is finite; [count + 1 <= N + 1 <= N + V + 1] makes every
    cost non-negative. The normalization by the unseen-edge cost keeps the
    model commensurate with the paper's units: an edge the corpus never
    used costs exactly one paper unit, a mined edge costs less in
    proportion to its log-frequency, so [Mined] refines the paper order by
    discounting corpus-supported chains rather than re-scaling chain
    length against the free-variable charge. Costs are rounded to
    {!Prospector.Elem.cost_scale} fixed-point units so weighted search
    stays in deterministic integer arithmetic. Widening conversions keep
    cost 0 — they have no syntax, in either ranking mode.

    On the empty model ([N = V = 0]) every cost is 0 and weighted ranking
    degenerates to the paper order. Pair co-occurrence does not enter the
    (additive) search cost; it is mined for corpus diagnostics and
    reported by the stats surfaces. *)

module Elem = Prospector.Elem

type t

val empty : t

val of_examples : Extract.example list -> t
(** Count each elem occurrence across the examples (an elem appearing
    [k] times in one chain counts [k]), and each consecutive pair of
    non-widening elems. Deterministic in the example list, which
    {!Extract.extract} keeps identical at any job count. *)

val add_examples : t -> Extract.example list -> t
(** A new model with the examples folded in — equal, field for field, to
    [of_examples] over the concatenated example lists. The input model is
    unchanged (tables are copied), so a server can keep answering off the
    old cost model while a reload derives the new one. Used by live reload
    to grow the mined statistics for touched elems without re-extracting
    the whole corpus. *)

val count : t -> Elem.t -> int
(** Mined occurrences of the elem; 0 when unseen. Widening conversions are
    never counted. *)

val pair_count : t -> Elem.t -> Elem.t -> int
(** Mined occurrences of the ordered pair as consecutive non-widening
    elems of one example. *)

val total : t -> int
(** [N]: total counted occurrences. *)

val distinct : t -> int
(** [V]: distinct counted elems. *)

val edge_cost : t -> Elem.t -> int
(** The smoothed cost above, in {!Prospector.Elem.cost_scale} units;
    0 for widening conversions. Always finite, never negative, and
    monotone: more frequently used elems cost less. *)

val floor_cost : t -> int
(** The smoothing floor — {!edge_cost} of any unseen (non-widening) elem,
    the maximum any elem can cost under this model: exactly
    {!Prospector.Elem.cost_scale} (one paper unit) on a non-empty model,
    0 on the empty one. *)
