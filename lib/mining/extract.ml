module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Tast = Minijava.Tast
module Elem = Prospector.Elem
module Pool = Prospector_parallel.Pool

type example = {
  input : Jtype.t;
  elems : Elem.t list;
  origin : string;
}

(* A chain is an (input type, reversed elems) pair whose output type — the
   type produced by the head of the reversed list — is tracked by the
   caller. *)
type chain = {
  c_input : Jtype.t;
  c_rev : Elem.t list;
  c_len : int;  (* non-widening elems *)
}

let empty_chain ty = { c_input = ty; c_rev = []; c_len = 0 }

let push_elem ch e =
  { ch with c_rev = e :: ch.c_rev; c_len = ch.c_len + Elem.cost e }

(* Widen the chain's current output [from_] to [to_]; drop the chain (None)
   if the conversion is not a widening — that data-flow edge was an
   artifact of context-insensitive parameter wiring. *)
let widen_chain h ch ~from_ ~to_ =
  if Jtype.equal from_ to_ then Some ch
  else if Hierarchy.is_subtype h from_ to_ then
    Some { ch with c_rev = Elem.Widen { from_; to_ } :: ch.c_rev }
  else None

let rec returns_of_stmts acc = function
  | [] -> acc
  | Tast.Treturn (Some e) :: rest -> returns_of_stmts (e :: acc) rest
  | Tast.Tif (_, a, b) :: rest ->
      returns_of_stmts (returns_of_stmts (returns_of_stmts acc a) b) rest
  | Tast.Twhile (_, body) :: rest -> returns_of_stmts (returns_of_stmts acc body) rest
  | (Tast.Tlocal _ | Tast.Tassign _ | Tast.Tfield_assign _ | Tast.Texpr _
    | Tast.Treturn None)
    :: rest ->
      returns_of_stmts acc rest

let returns_of_meth (m : Tast.tmeth) = List.rev (returns_of_stmts [] m.Tast.body)

let ref_param_indices params =
  List.concat
    (List.mapi (fun i (_, ty) -> if Jtype.is_reference ty then [ i ] else []) params)

type budget = {
  mutable remaining : int;
  max_len : int;
}

(* Every complete chain is born at a terminal, so charging the budget there
   bounds the number of examples extracted for the cast (the paper's
   per-cast cap). Once exhausted, every trace returns []. *)
let terminal budget ch =
  if budget.remaining <= 0 then []
  else begin
    budget.remaining <- budget.remaining - 1;
    [ ch ]
  end

(* Trace the producers of [e] (evaluated in method [key]) backward. Returns
   chains whose output type equals [e.ty] exactly. [visiting] prevents
   cycles through variable slots and inlined methods. *)
let rec trace df budget visiting key (e : Tast.texpr) : chain list =
  if budget.remaining <= 0 then []
  else
    let h = (Dataflow.program df).Tast.hierarchy in
    match e.Tast.tdesc with
    | Tast.Tnull | Tast.Tint _ | Tast.Tbool _ | Tast.Thole -> []
    | Tast.Tstring _ -> terminal budget (empty_chain Jtype.string_t)
    | Tast.Tclass_lit _ -> terminal budget (empty_chain e.Tast.ty)
    | Tast.Tvar v ->
        let slot = "var:" ^ key ^ "#" ^ v in
        if List.mem slot visiting then []
        else
          let visiting = slot :: visiting in
          if Dataflow.is_param df ~method_key:key ~var:v then begin
            match Dataflow.param_producers df ~method_key:key ~var:v with
            | [] -> terminal budget (empty_chain e.Tast.ty)
            | producers ->
                collect budget producers ~f:(fun (caller_key, arg) ->
                    trace df budget visiting caller_key arg
                    |> List.filter_map (fun ch ->
                           widen_chain h ch ~from_:arg.Tast.ty ~to_:e.Tast.ty))
          end
          else begin
            (* flow-sensitive mode narrows to the defs reaching this use *)
            let producers =
              match Dataflow.reaching_defs df e with
              | Some defs -> defs
              | None -> Dataflow.var_producers df ~method_key:key ~var:v
            in
            match producers with
            | [] -> terminal budget (empty_chain e.Tast.ty)
            | producers ->
                collect budget producers ~f:(fun p ->
                    trace df budget visiting key p
                    |> List.filter_map (fun ch ->
                           widen_chain h ch ~from_:p.Tast.ty ~to_:e.Tast.ty))
          end
    | Tast.Tcast (to_, inner) ->
        trace df budget visiting key inner
        |> List.filter_map (fun ch ->
               if ch.c_len + 1 > budget.max_len then None
               else
                 Some (push_elem ch (Elem.Downcast { from_ = inner.Tast.ty; to_ })))
    | Tast.Tfield (_recv, owner, f) when Dataflow.is_corpus_class df owner ->
        (* A corpus class's field is not an API element: inline through the
           corpus-wide assignments to it. *)
        let slot = "field:" ^ Qname.to_string owner ^ "#" ^ f.Member.fname in
        if List.mem slot visiting then []
        else
          let visiting = slot :: visiting in
          collect budget
            (Dataflow.field_producers df ~owner ~field:f.Member.fname)
            ~f:(fun p ->
              trace df budget visiting key p
              |> List.filter_map (fun ch ->
                     widen_chain h ch ~from_:p.Tast.ty ~to_:e.Tast.ty))
    | Tast.Tfield (recv, owner, f) ->
        if f.Member.fstatic then
          terminal budget
            (push_elem (empty_chain Jtype.Void) (Elem.Field_access { owner; field = f }))
        else
          let elem = Elem.Field_access { owner; field = f } in
          trace df budget visiting key recv
          |> List.filter_map (fun ch ->
                 if ch.c_len + 1 > budget.max_len then None
                 else
                   Option.map
                     (fun ch -> push_elem ch elem)
                     (widen_chain h ch ~from_:recv.Tast.ty ~to_:(Jtype.ref_ owner)))
    | Tast.Tstatic_field (owner, f) ->
        terminal budget
          (push_elem (empty_chain Jtype.Void) (Elem.Field_access { owner; field = f }))
    | Tast.Tnew (q, args) ->
        let ctor =
          match Hierarchy.find_opt h q with
          | Some d -> (
              match
                List.find_opt
                  (fun (c : Member.ctor) ->
                    List.length c.Member.cparams = List.length args)
                  d.Decl.ctors
              with
              | Some c -> c
              | None -> Member.ctor [])
          | None -> Member.ctor []
        in
        let mk input = Elem.Ctor_call { owner = q; ctor; input } in
        call_chains df budget visiting key ~params:ctor.Member.cparams ~args
          ~recv:None ~mk
    | Tast.Tstatic_call (owner, m, args) -> (
        match
          Dataflow.corpus_static_callee df ~owner ~name:m.Member.mname
            ~arity:(List.length args)
        with
        | Some callee -> inline_chains df budget visiting callee ~declared_ret:e.Tast.ty
        | None ->
            let mk input = Elem.Static_call { owner; meth = m; input } in
            call_chains df budget visiting key ~params:m.Member.params ~args ~recv:None
              ~mk)
    | Tast.Tcall (recv, owner, m, args) -> (
        let callees =
          Dataflow.corpus_callees df ~recv_type:recv.Tast.ty ~name:m.Member.mname
            ~arity:(List.length args)
        in
        match callees with
        | _ :: _ ->
            (* Client methods are always inlined, never elementary. *)
            collect budget callees ~f:(fun callee ->
                inline_chains df budget visiting callee ~declared_ret:e.Tast.ty)
        | [] ->
            let mk input = Elem.Instance_call { owner; meth = m; input } in
            call_chains df budget visiting key ~params:m.Member.params ~args
              ~recv:(Some (recv, Jtype.ref_ owner)) ~mk)

(* Branch over the possible data-flow inputs of a call: the receiver (when
   present) and every reference-typed argument. A call with no reference
   inputs is a zero-argument expression and terminates the walk. *)
and call_chains df budget visiting key ~params ~args ~recv ~mk =
  let h = (Dataflow.program df).Tast.hierarchy in
  let ref_idxs = ref_param_indices params in
  let recv_branch =
    match recv with
    | None -> []
    | Some (r, owner_ty) ->
        trace df budget visiting key r
        |> List.filter_map (fun ch ->
               if ch.c_len + 1 > budget.max_len then None
               else
                 Option.map
                   (fun ch -> push_elem ch (mk Elem.Receiver))
                   (widen_chain h ch ~from_:r.Tast.ty ~to_:owner_ty))
  in
  let arg_branches =
    collect budget ref_idxs ~f:(fun i ->
        match List.nth_opt args i with
        | None -> []
        | Some arg ->
            let _, pty = List.nth params i in
            trace df budget visiting key arg
            |> List.filter_map (fun ch ->
                   if ch.c_len + 1 > budget.max_len then None
                   else
                     Option.map
                       (fun ch -> push_elem ch (mk (Elem.Param i)))
                       (widen_chain h ch ~from_:arg.Tast.ty ~to_:pty)))
  in
  let zero_input =
    if recv = None && ref_idxs = [] then
      terminal budget (push_elem (empty_chain Jtype.Void) (mk Elem.No_input))
    else []
  in
  zero_input @ recv_branch @ arg_branches

(* Inline a corpus method: its value is whatever its return expressions
   produce. *)
and inline_chains df budget visiting (callee : Tast.tmeth) ~declared_ret =
  let h = (Dataflow.program df).Tast.hierarchy in
  let ckey = Tast.method_key callee in
  let slot = "inline:" ^ ckey in
  if List.mem slot visiting then []
  else
    let visiting = slot :: visiting in
    collect budget (returns_of_meth callee) ~f:(fun ret_expr ->
        trace df budget visiting ckey ret_expr
        |> List.filter_map (fun ch ->
               widen_chain h ch ~from_:ret_expr.Tast.ty ~to_:declared_ret))

and collect : 'a. budget -> 'a list -> f:('a -> chain list) -> chain list =
 fun budget items ~f ->
  List.concat_map
    (fun item -> if budget.remaining <= 0 then [] else f item)
    items

let finish_chain origin ch = { input = ch.c_input; elems = List.rev ch.c_rev; origin }

(* The old in-house predicate — composition equality plus conversion
   direction — is now the analyzer's job; the verifier additionally checks
   that every referenced member really is declared. *)
let example_well_typed h ex =
  match ex.elems with
  | [] -> false
  | first :: _ ->
      Jtype.equal (Elem.input_type first) ex.input
      && Analysis.Verify.sound h
           (Prospector.Jungloid.make ~input:ex.input ex.elems)

(* Examples must come from working client code: a method with
   error-severity lint (a variable read that can never be assigned, an
   impossible cast) is not working code, so its cast sites are skipped.
   Memoized — a method hosts many sites. *)
let lint_gate_of df =
  let memo = Hashtbl.create 16 in
  fun key ->
    match Hashtbl.find_opt memo key with
    | Some bad -> bad
    | None ->
        let bad =
          match Dataflow.find_method df ~key with
          | Some m -> Analysis.Corpuslint.method_has_errors df m
          | None -> false
        in
        Hashtbl.add memo key bad;
        bad

let extract_common ?(max_per_cast = 64) ?(max_len = 12) ?(lint_gate = true)
    ?(pool = Pool.sequential) ~df ~sites () =
  (* The lint gate is evaluated sequentially up front, one verdict per
     distinct method key: the memo behind [lint_gate_of] mutates on miss,
     which a fan-out must not share. Everything the per-site walk reads
     after this point — the data-flow indexes, the hierarchy's subtype
     checks — is immutable, and each site owns its budget, so sites are
     independent jobs. [Pool.map_list] keeps site order, hence output order
     (and therefore the mined graph) is identical at any job count. *)
  let gate =
    if not lint_gate then fun _ -> false
    else begin
      let g = lint_gate_of df in
      let verdicts = Hashtbl.create 16 in
      List.iter
        (fun (key, _, _) ->
          if not (Hashtbl.mem verdicts key) then Hashtbl.replace verdicts key (g key))
        sites;
      Hashtbl.find verdicts
    end
  in
  Hierarchy.warm (Dataflow.program df).Tast.hierarchy;
  List.concat
    (Pool.map_list pool
       (fun (key, origin, mk_chains) ->
         if lint_gate && gate key then []
         else begin
           let budget = { remaining = max_per_cast; max_len } in
           let chains = mk_chains budget in
           (* Enforce the cap exactly (collect only short-circuits between
              items). *)
           let chains = List.filteri (fun i _ -> i < max_per_cast) chains in
           List.map (finish_chain origin) chains
         end)
       sites)

let extract ?max_per_cast ?max_len ?lint_gate ?pool df =
  let sites =
    List.mapi
      (fun i ((m : Tast.tmeth), cast_expr) ->
        let key = Tast.method_key m in
        let origin = Printf.sprintf "%s:cast-%d" key i in
        ( key,
          origin,
          fun budget ->
            (* The cast expression itself is the end of the example. *)
            trace df budget [] key cast_expr ))
      (Dataflow.casts df)
  in
  extract_common ?max_per_cast ?max_len ?lint_gate ?pool ~df ~sites ()

let extract_for_arg ?max_per_cast ?max_len ?lint_gate ?pool df ~is_target =
  (* Find call sites with a reference argument in a targeted parameter
     position; the final elem is the call with input = that parameter. *)
  let sites = ref [] in
  let idx = ref 0 in
  List.iter
    (fun (m : Tast.tmeth) ->
      let key = Tast.method_key m in
      Tast.iter_exprs m.Tast.body (fun e ->
          match e.Tast.tdesc with
          | Tast.Tcall (_, owner, meth, args) | Tast.Tstatic_call (owner, meth, args)
            -> (
              let static = match e.Tast.tdesc with Tast.Tstatic_call _ -> true | _ -> false in
              List.iteri
                (fun i (_, pty) ->
                  if is_target pty then
                    match List.nth_opt args i with
                    | Some arg when Jtype.is_reference arg.Tast.ty ->
                        let origin = Printf.sprintf "%s:arg-%d" key !idx in
                        incr idx;
                        let mk input =
                          if static then Elem.Static_call { owner; meth; input }
                          else Elem.Instance_call { owner; meth; input }
                        in
                        sites :=
                          ( key,
                            origin,
                            fun budget ->
                              let hh = (Dataflow.program df).Tast.hierarchy in
                              trace df budget [] key arg
                              |> List.filter_map (fun ch ->
                                     if ch.c_len + 1 > budget.max_len then None
                                     else
                                       Option.map
                                         (fun ch -> push_elem ch (mk (Elem.Param i)))
                                         (widen_chain hh ch ~from_:arg.Tast.ty ~to_:pty))
                          )
                          :: !sites
                    | _ -> ())
                meth.Member.params)
          | _ -> ()))
    (Dataflow.program df).Tast.methods;
  extract_common ?max_per_cast ?max_len ?lint_gate ?pool ~df ~sites:(List.rev !sites) ()
