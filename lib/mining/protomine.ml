(* Receiver-sequence reconstruction for the protocol miner. See
   protomine.mli for the tracking rules. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Tast = Minijava.Tast
module Dataflow = Analysis.Dataflow
module Protocol = Analysis.Protocol

let label (m : Member.meth) =
  Printf.sprintf "%s/%d" m.mname (List.length m.params)

let call_label owner (m : Member.meth) =
  Qname.to_string owner ^ "." ^ label m

(* How an expression produces its value, for [seq_producer]. Variables
   resolve through the def-use index (first producer in source order;
   parameters follow the first corpus call site), guarded by a visited set
   so assignment cycles degrade to [Unknown]. *)
let rec producer_of_expr df ~visited ~method_key (e : Tast.texpr) =
  match e.tdesc with
  | Tcast _ -> Protocol.Cast
  | Tcall (_, owner, m, _) -> Protocol.Call (call_label owner m)
  | Tstatic_call (owner, m, _) -> Protocol.Call (call_label owner m)
  | Tnew (owner, _) -> Protocol.New (Qname.to_string owner)
  | Tfield (_, owner, f) ->
      Protocol.Field (Qname.to_string owner ^ "." ^ f.Member.fname)
  | Tstatic_field (owner, f) ->
      Protocol.Field (Qname.to_string owner ^ "." ^ f.Member.fname)
  | Tvar v -> var_producer df ~visited ~method_key v
  | Tnull | Tstring _ | Tint _ | Tbool _ | Tclass_lit _ | Thole ->
      Protocol.Unknown

and var_producer df ~visited ~method_key v =
  if List.mem (method_key, v) visited || List.length visited > 8 then
    Protocol.Unknown
  else
    let visited = (method_key, v) :: visited in
    if Dataflow.is_param df ~method_key ~var:v then
      match Dataflow.param_producers df ~method_key ~var:v with
      | [] -> Protocol.Param
      | (caller_key, arg) :: _ ->
          producer_of_expr df ~visited ~method_key:caller_key arg
    | exception Not_found -> Protocol.Unknown
    else
      match Dataflow.var_producers df ~method_key ~var:v with
      | [] -> Protocol.Unknown
      | e :: _ -> producer_of_expr df ~visited ~method_key e

(* Walk a method body in evaluation order (receiver, then arguments, then
   the call itself), feeding call events to the sinks:
   - [emit_var v ty ev]: [ev] happened to the local/parameter [v];
   - [emit_anon seq]: a receiver with no name (an inline producing
     expression) accumulated [seq] — chains decompose pairwise, each link
     a one-event sequence produced by the previous link.
   [visited] carries the interprocedural splice stack: passing a tracked
   variable as argument [i] to a corpus method appends the events that
   method's body performs on parameter [i] (recursively, cycle-guarded). *)
let rec scan df ~visited ~(meth : Tast.tmeth) ~emit_var ~emit_anon =
  let method_key = Tast.method_key meth in
  let event (m : Member.meth) loc ~discarded =
    {
      Protocol.ev_meth = label m;
      ev_loc = loc;
      ev_void = m.ret = Jtype.Void;
      ev_discarded = discarded;
    }
  in
  let record_receiver (recv : Tast.texpr) m loc ~discarded =
    let ev = event m loc ~discarded in
    match (recv.tdesc, recv.ty) with
    | Tvar v, Jtype.Ref _ -> emit_var v recv.ty ev
    | _, Jtype.Ref _ ->
        emit_anon
          {
            Protocol.seq_type = Jtype.to_string recv.ty;
            seq_producer = producer_of_expr df ~visited:[] ~method_key recv;
            seq_loc = recv.loc;
            seq_events = [ ev ];
          }
    | _ -> ()
  in
  let splice_args callee args =
    match callee with
    | None -> ()
    | Some (cm : Tast.tmeth) ->
        List.iteri
          (fun i (a : Tast.texpr) ->
            match (List.nth_opt cm.params i, a.ty) with
            | Some (pname, _), Jtype.Ref _ -> (
                match a.tdesc with
                | Tvar v ->
                    List.iter
                      (fun ev -> emit_var v a.ty ev)
                      (param_events df ~visited cm pname)
                | Tnull | Tstring _ | Tint _ | Tbool _ | Tclass_lit _ | Thole
                  ->
                    ()
                | _ -> (
                    match param_events df ~visited cm pname with
                    | [] -> ()
                    | events ->
                        emit_anon
                          {
                            Protocol.seq_type = Jtype.to_string a.ty;
                            seq_producer =
                              producer_of_expr df ~visited:[] ~method_key a;
                            seq_loc = a.loc;
                            seq_events = events;
                          }))
            | _ -> ())
          args
  in
  let rec expr ?(discarded = false) (e : Tast.texpr) =
    match e.tdesc with
    | Tcall (recv, _, m, args) ->
        expr recv;
        List.iter (fun a -> expr a) args;
        record_receiver recv m e.loc ~discarded;
        splice_args
          (match
             Dataflow.corpus_callees df ~recv_type:recv.ty ~name:m.mname
               ~arity:(List.length m.params)
           with
          | callee :: _ -> Some callee
          | [] -> None)
          args
    | Tstatic_call (owner, m, args) ->
        List.iter (fun a -> expr a) args;
        splice_args
          (Dataflow.corpus_static_callee df ~owner ~name:m.mname
             ~arity:(List.length m.params))
          args
    | Tnew (_, args) -> List.iter (fun a -> expr a) args
    | Tcast (_, inner) | Tfield (inner, _, _) -> expr inner
    | Tvar _ | Tnull | Tstring _ | Tint _ | Tbool _ | Tclass_lit _
    | Tstatic_field _ | Thole ->
        ()
  in
  let rec stmt (s : Tast.tstmt) =
    match s with
    | Tlocal (_, _, init) -> Option.iter (fun e -> expr e) init
    | Tassign (_, e) | Tfield_assign (_, _, e) -> expr e
    | Texpr e -> expr ~discarded:true e
    | Treturn e -> Option.iter (fun e -> expr e) e
    | Tif (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | Twhile (c, b) ->
        expr c;
        List.iter stmt b
  in
  List.iter stmt meth.body

(* Events a corpus method performs on one of its parameters, for splicing
   into a caller's argument. The visited stack caps recursion through
   call cycles. *)
and param_events df ~visited (cm : Tast.tmeth) pname =
  let ckey = Tast.method_key cm in
  if List.mem (ckey, pname) visited then []
  else begin
    let acc = ref [] in
    let emit_var v _ty ev = if v = pname then acc := ev :: !acc in
    scan df
      ~visited:((ckey, pname) :: visited)
      ~meth:cm ~emit_var
      ~emit_anon:(fun _ -> ());
    List.rev !acc
  end

let method_sequences df (meth : Tast.tmeth) =
  let key = Tast.method_key meth in
  let streams : (string, Protocol.event list ref * Jtype.t) Hashtbl.t =
    Hashtbl.create 7
  in
  let order = ref [] in
  let anon = ref [] in
  let emit_var v ty ev =
    match Hashtbl.find_opt streams v with
    | Some (evs, _) -> evs := ev :: !evs
    | None ->
        Hashtbl.replace streams v (ref [ ev ], ty);
        order := v :: !order
  in
  let emit_anon seq = anon := seq :: !anon in
  scan df ~visited:[] ~meth ~emit_var ~emit_anon;
  let var_seqs =
    List.rev !order
    |> List.filter_map (fun v ->
           let evs, ty = Hashtbl.find streams v in
           (* A parameter with corpus callers is already accounted for by
              splicing at each call site. *)
           let spliced_elsewhere =
             Dataflow.is_param df ~method_key:key ~var:v
             && Dataflow.param_producers df ~method_key:key ~var:v <> []
           in
           match List.rev !evs with
           | [] -> None
           | _ when spliced_elsewhere -> None
           | first :: _ as events ->
               Some
                 {
                   Protocol.seq_type = Jtype.to_string ty;
                   seq_producer = var_producer df ~visited:[] ~method_key:key v;
                   seq_loc = first.Protocol.ev_loc;
                   seq_events = events;
                 })
  in
  var_seqs @ List.rev !anon

let sequences df =
  let prog = Dataflow.program df in
  List.concat_map (method_sequences df) prog.Tast.methods

let of_dataflow ?min_evidence df = Protocol.learn ?min_evidence (sequences df)
let mine ?min_evidence prog = of_dataflow ?min_evidence (Dataflow.build prog)
