(** Splicing mined examples into the signature graph to form the jungloid
    graph (Section 4.2, Figure 6).

    Each example suffix [e1 · … · ek · (U)] becomes a fresh path: the entry
    is the {e real} node of the example's input type, every intermediate
    value gets a fresh typestate node (so the downcast is reachable only
    through the example's own prefix — the paper's [Object-1]), and the
    final downcast lands back on the real node of the cast's target, where
    ordinary signature-graph synthesis continues. *)

type stats = {
  casts_in_corpus : int;
  examples_extracted : int;
  examples_after_generalization : int;
  edges_added : int;
  typestate_nodes_added : int;
}

val add_examples : Prospector.Graph.t -> Extract.example list -> int * int
(** Returns [(edges_added, typestate_nodes_added)]. *)

val examples :
  ?max_per_cast:int ->
  ?max_len:int ->
  ?include_protected:bool ->
  ?flow_sensitive:bool ->
  ?pool:Prospector_parallel.Pool.t ->
  Minijava.Tast.program ->
  Extract.example list
(** The extraction front half of {!enrich} alone: visibility-filtered,
    pre-generalization examples, exactly what [enrich]'s [on_examples] hook
    reports — without touching any graph. The serve warm-start uses this to
    rebuild the {!Usage} model next to a graph loaded from disk (which
    already contains the spliced examples). *)

val enrich :
  ?max_per_cast:int ->
  ?max_len:int ->
  ?generalize:bool ->
  ?min_keep:int ->
  ?include_protected:bool ->
  ?flow_sensitive:bool ->
  ?pool:Prospector_parallel.Pool.t ->
  ?on_examples:(Extract.example list -> unit) ->
  Prospector.Graph.t ->
  Minijava.Tast.program ->
  stats
(** The whole Section 4 pipeline over a resolved corpus: build the data-flow
    indexes, extract example jungloids from every cast, optionally
    generalize (default [true]), and splice the results into [graph].
    Examples that call non-public members are dropped unless
    [include_protected] admits protected ones (default [false], matching
    the paper's public-only synthesis surface). [flow_sensitive] switches
    the slicer to per-use reaching definitions (the paper is
    flow-insensitive; the ablation measures the precision gap). [?pool]
    parallelizes the extraction stage (see {!Extract.extract}); splicing
    stays sequential, so the resulting graph is identical at any job
    count. [on_examples] is called once with the visibility-filtered,
    pre-generalization examples — the raw usage evidence
    {!Usage.of_examples} counts (generalization dedups, which would skew
    frequencies). *)
