module Jtype = Javamodel.Jtype
module Qname = Javamodel.Qname
module Tast = Minijava.Tast

type hole = {
  owner : Qname.t;
  meth : string;
  expected : Jtype.t;
  vars : (string * Jtype.t) list;
}

let is_hole_init = function
  | Some { Tast.tdesc = Tast.Thole; _ } -> true
  | Some _ | None -> false

(* Walk a body in statement order, tracking the environment; [env] is kept
   in reverse declaration order and flipped when a hole is recorded. *)
let rec scan_stmts ~record ~owner ~meth env stmts =
  List.fold_left
    (fun env stmt ->
      match stmt with
      | Tast.Tlocal (name, ty, init) ->
          if is_hole_init init then
            record { owner; meth; expected = ty; vars = List.rev env };
          (name, ty) :: env
      | Tast.Tassign (name, { Tast.tdesc = Tast.Thole; _ }) ->
          (match List.assoc_opt name env with
          | Some ty -> record { owner; meth; expected = ty; vars = List.rev env }
          | None -> ());
          env
      | Tast.Tfield_assign (_, f, { Tast.tdesc = Tast.Thole; _ }) ->
          record { owner; meth; expected = f.Javamodel.Member.ftype; vars = List.rev env };
          env
      | Tast.Tassign _ | Tast.Tfield_assign _ | Tast.Texpr _ | Tast.Treturn _ -> env
      | Tast.Tif (_, a, b) ->
          (* branch-local declarations stay branch-local *)
          ignore (scan_stmts ~record ~owner ~meth env a);
          ignore (scan_stmts ~record ~owner ~meth env b);
          env
      | Tast.Twhile (_, body) ->
          ignore (scan_stmts ~record ~owner ~meth env body);
          env)
    env stmts

let holes (prog : Tast.program) =
  let acc = ref [] in
  let record h = acc := h :: !acc in
  List.iter
    (fun (m : Tast.tmeth) ->
      let initial =
        let params = List.rev m.Tast.params in
        if m.Tast.static then params
        else params @ [ ("this", Jtype.ref_ m.Tast.owner) ]
      in
      ignore
        (scan_stmts ~record ~owner:m.Tast.owner ~meth:m.Tast.name initial m.Tast.body))
    prog.Tast.methods;
  List.rev !acc

let contexts ~api sources = holes (Minijava.Resolve.parse_program ~api sources)

let to_context h = { Prospector.Assist.vars = h.vars; expected = h.expected }

let suggest_at ?settings ?engine ?edge_cost ?protocol_check ~graph ~hierarchy h =
  Prospector.Assist.suggest ?settings ?engine ?edge_cost ?protocol_check ~graph
    ~hierarchy (to_context h)

let session ?cache_capacity ?edge_cost ?protocol_check ~graph ~hierarchy () =
  Prospector.Query.engine ?cache_capacity ?edge_cost ?protocol_check ~graph
    ~hierarchy ()

let suggest_all ?settings ?engine ?edge_cost ?protocol_check ~graph ~hierarchy
    holes =
  (* An editing session: one engine across every hole in the buffer, so
     holes sharing an expected type (or revisited after an edit elsewhere)
     reuse search work instead of repeating it. *)
  let engine =
    match engine with
    | Some e -> e
    | None -> session ?edge_cost ?protocol_check ~graph ~hierarchy ()
  in
  List.map (fun h -> (h, suggest_at ?settings ~engine ~graph ~hierarchy h)) holes
