(** Query inference from source context — the IDE integration of Section 5.

    PROSPECTOR's users never wrote queries: the Eclipse plugin watched for a
    cursor on the right-hand side of [Type var = |] or [var = |], took the
    assigned variable's type as [tout], and the lexically visible variables
    as the [tin] candidates. This module reproduces that end-to-end: write
    mini-Java with a [?] hole where the cursor would be,

    {v
    class Client {
      void run(IWorkbench workbench) {
        IWorkbenchPage page = workbench.getActiveWorkbenchWindow().getActivePage();
        IEditorPart editor = ?;          // <- the cursor
      }
    }
    v}

    and {!holes} recovers, for each hole, the expected type and every
    variable in scope at that point ([workbench] and [page] above, plus
    [this] in instance methods); {!suggest_at} then runs the multi-source
    search exactly as the plugin's content assist did. *)

module Jtype = Javamodel.Jtype
module Qname = Javamodel.Qname

type hole = {
  owner : Qname.t;  (** enclosing class *)
  meth : string;  (** enclosing method name *)
  expected : Jtype.t;  (** the declared type at the hole *)
  vars : (string * Jtype.t) list;  (** variables in scope, in declaration order *)
}

val holes : Minijava.Tast.program -> hole list
(** Every [Type var = ?;] or [var = ?;] hole in the program, in source
    order. *)

val contexts :
  api:Javamodel.Hierarchy.t -> (string * string) list -> hole list
(** Parse and resolve [(filename, mini-Java source)] buffers against an API
    model, then collect the holes.
    @raise Japi.Error.E on syntax or resolution errors. *)

val to_context : hole -> Prospector.Assist.context

val suggest_at :
  ?settings:Prospector.Query.settings ->
  ?engine:Prospector.Query.engine ->
  ?edge_cost:(Prospector.Elem.t -> int) ->
  ?protocol_check:(Prospector.Jungloid.t -> string list) ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  hole ->
  Prospector.Assist.suggestion list
(** Content-assist suggestions for one hole. Pass [?engine] (see {!session})
    to serve the hole from the interactive query cache — the IDE keeps one
    engine per open workspace, so re-triggering assist at an unchanged
    program point costs a hash lookup, and graph enrichment (new mined
    examples arriving) transparently invalidates it. [?edge_cost] is the
    mined usage model for [Mined]-ranking settings; [?protocol_check] the
    mined typestate checker for [Warn]/[Filter]-protocol settings (engine
    sessions carry their own — see {!session}). *)

val session :
  ?cache_capacity:int ->
  ?edge_cost:(Prospector.Elem.t -> int) ->
  ?protocol_check:(Prospector.Jungloid.t -> string list) ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  unit ->
  Prospector.Query.engine
(** The interactive session handle: a {!Prospector.Query.engine} over the
    workspace graph, shared by every completion request. [?edge_cost]
    installs the workspace's mined usage model for [Mined]-ranking
    completions; [?protocol_check] its mined typestate checker for
    [Warn]/[Filter]-protocol completions. *)

val suggest_all :
  ?settings:Prospector.Query.settings ->
  ?engine:Prospector.Query.engine ->
  ?edge_cost:(Prospector.Elem.t -> int) ->
  ?protocol_check:(Prospector.Jungloid.t -> string list) ->
  graph:Prospector.Graph.t ->
  hierarchy:Javamodel.Hierarchy.t ->
  hole list ->
  (hole * Prospector.Assist.suggestion list) list
(** Suggestions for every hole of a buffer through one shared engine (a
    fresh one when [?engine] is absent): the batch counterpart of
    {!suggest_at}, in source order. *)
