(** The class hierarchy: a closed table of declarations with subtyping.

    The hierarchy is the substrate under both the signature graph (widening
    edges, member enumeration) and the mining call-graph approximation
    (dispatch targets by subtype). It normalizes implicit Java facts:

    - every class other than [java.lang.Object] has a superclass
      ([java.lang.Object] if the declaration named none);
    - interface values widen to [java.lang.Object];
    - array types are covariant and widen to [java.lang.Object];
    - referenced but undeclared types can be closed over as opaque
      synthetic classes with {!ensure_closed}. *)

type t

exception Unknown_type of Qname.t

exception Duplicate_decl of Qname.t

val create : unit -> t
(** An empty hierarchy containing only [java.lang.Object]. *)

val copy : t -> t
(** An independent copy; additions to the copy do not affect the original.
    O(1): the decl table is persistent underneath, so the copy shares it
    until either side mutates. Used to extend an API hierarchy with corpus
    client classes and as {!Delta}'s working copy per reload. *)

val of_decls : Decl.t list -> t
(** [of_decls ds] builds a hierarchy and {!ensure_closed}s it.
    @raise Duplicate_decl if two declarations share a name. *)

val add : t -> Decl.t -> unit
(** @raise Duplicate_decl on re-declaration. *)

val replace : t -> Decl.t -> unit
(** Swap the declaration under an already-declared name in place. Unlike
    remove-then-add this keeps the name's insertion stamp and therefore its
    position in the iteration order, which downstream id assignment (node
    numbering in the signature graph) depends on for incremental reload.
    @raise Unknown_type if the name is not declared. *)

val remove : t -> Qname.t -> unit
(** Drop a declaration. [java.lang.Object] is the hierarchy's root and is
    not removable.
    @raise Unknown_type if the name is not declared.
    @raise Invalid_argument on [java.lang.Object]. *)

val ensure_closed : t -> unit
(** Add an opaque synthetic class for every type referenced by a signature or
    an [extends]/[implements] clause but not declared. Idempotent. *)

val find : t -> Qname.t -> Decl.t
(** @raise Unknown_type *)

val find_opt : t -> Qname.t -> Decl.t option

val mem : t -> Qname.t -> bool

val size : t -> int
(** Number of declarations (including synthetic ones). *)

val iter : t -> (Decl.t -> unit) -> unit

val fold : t -> init:'a -> f:('a -> Decl.t -> 'a) -> 'a

val decls : t -> Decl.t list
(** All declarations, sorted by name for deterministic iteration. *)

val direct_supers : t -> Qname.t -> Qname.t list
(** Immediate widening targets of a declared type: superclass and implemented
    interfaces for a class, superinterfaces plus [Object] for an interface.
    [Object] itself has none. Unknown types are treated as opaque classes
    extending [Object]. *)

val supers : t -> Qname.t -> Qname.Set.t
(** Strict transitive supertypes. *)

val is_subclass : t -> Qname.t -> Qname.t -> bool
(** [is_subclass h sub sup] — reflexive transitive on declared names. *)

val is_subtype : t -> Jtype.t -> Jtype.t -> bool
(** Full widening-reference-conversion check on types: reflexive, transitive,
    arrays covariant, every reference type a subtype of [Object]. Primitive
    and [void] types are subtypes only of themselves. *)

val subtypes : t -> Qname.t -> Qname.Set.t
(** Strict transitive subtypes (inverse of {!supers}); reverse index is built
    lazily and invalidated by {!add}. *)

val depth : t -> Qname.t -> int
(** Length of the longest chain of {!direct_supers} steps from the type up to
    [Object]; [Object] has depth 0. Used by the output-generality ranking
    tiebreak (larger depth = more specific type). *)

val warm : t -> unit
(** Force the lazy memos behind {!subtypes} (reverse index) and {!depth}
    (per-name cache) for every declared name. A hierarchy is only safe to
    share read-only across domains after warming — the memos mutate on first
    use — so every parallel entry point ({!Mining.Extract},
    [Query.run_batch], the server engine) warms before fanning out. Idempotent
    and invalidated by {!add} like the memos themselves. *)

val lookup_method : t -> Qname.t -> string -> arity:int -> (Qname.t * Member.meth) option
(** Member lookup along the supertype chain, for the mini-Java resolver:
    returns the declaring type and signature of the first matching method. *)

val lookup_field : t -> Qname.t -> string -> (Qname.t * Member.field) option

val dispatch_targets : t -> Qname.t -> string -> arity:int -> (Qname.t * Member.meth) list
(** Conservative call-graph approximation by type hierarchy (Section 4.2):
    all declarations at or below [recv] that declare a method with this name
    and arity. *)

val referenced_qnames : Decl.t -> Qname.Set.t
(** Every type name mentioned by a declaration (supertypes and member
    signatures), with array/element types unwrapped to their base names. *)
