exception Unknown_type of Qname.t

exception Duplicate_decl of Qname.t

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

(* The decl table is persistent — two balanced maps sharing the decl
   values — behind a mutable record: [copy] is O(1) (it shares the maps)
   and every structural update is O(log n), which is what keeps a
   live-reload delta's working copy ([Delta.apply]) independent of model
   size. [byname] resolves names; [bystamp] fixes the iteration order:
   each name keeps the insertion stamp it got when first declared, and
   [replace] reuses the old stamp, so iteration order — and every node id
   derived from it downstream — is preserved across body edits. *)
type t = {
  mutable seq : int;  (* next insertion stamp *)
  mutable count : int;
  mutable byname : (int * Decl.t) Smap.t;
  mutable bystamp : Decl.t Imap.t;
  mutable reverse : Qname.Set.t Qname.Map.t option;
      (* lazy strict-direct-subtype index, invalidated on mutation;
         immutable once built, so copies share it *)
  mutable depth_cache : (string, int) Hashtbl.t;
      (* memo table, never shared between copies (it mutates on reads);
         mutations install a fresh table rather than resetting, so a copy
         holding the old one keeps its still-valid entries *)
}

let key q = Qname.to_string q

let insert t (d : Decl.t) =
  let stamp = t.seq in
  t.seq <- t.seq + 1;
  t.byname <- Smap.add (key d.dname) (stamp, d) t.byname;
  t.bystamp <- Imap.add stamp d t.bystamp;
  t.count <- t.count + 1

let invalidate t =
  t.reverse <- None;
  t.depth_cache <- Hashtbl.create 64

let create () =
  let t =
    {
      seq = 0;
      count = 0;
      byname = Smap.empty;
      bystamp = Imap.empty;
      reverse = None;
      depth_cache = Hashtbl.create 64;
    }
  in
  insert t (Decl.make Qname.object_qname);
  t

let copy t = { t with depth_cache = Hashtbl.create 64 }

let find_opt t q =
  match Smap.find_opt (key q) t.byname with
  | Some (_, d) -> Some d
  | None -> None

let find t q = match find_opt t q with Some d -> d | None -> raise (Unknown_type q)

let mem t q = Smap.mem (key q) t.byname

let size t = t.count

let add t (d : Decl.t) =
  if mem t d.dname then raise (Duplicate_decl d.dname);
  insert t d;
  invalidate t

let replace t (d : Decl.t) =
  match Smap.find_opt (key d.dname) t.byname with
  | None -> raise (Unknown_type d.dname)
  | Some (stamp, _) ->
      t.byname <- Smap.add (key d.dname) (stamp, d) t.byname;
      t.bystamp <- Imap.add stamp d t.bystamp;
      invalidate t

let remove t q =
  if Qname.equal q Qname.object_qname then
    invalid_arg "Hierarchy.remove: java.lang.Object is not removable";
  match Smap.find_opt (key q) t.byname with
  | None -> raise (Unknown_type q)
  | Some (stamp, _) ->
      t.byname <- Smap.remove (key q) t.byname;
      t.bystamp <- Imap.remove stamp t.bystamp;
      t.count <- t.count - 1;
      invalidate t

let iter t f = Imap.iter (fun _ d -> f d) t.bystamp

let fold t ~init ~f = Imap.fold (fun _ d acc -> f acc d) t.bystamp init

let decls t =
  fold t ~init:[] ~f:(fun acc d -> d :: acc)
  |> List.sort (fun (a : Decl.t) (b : Decl.t) -> Qname.compare a.dname b.dname)

(* Base reference names mentioned by a type, unwrapping arrays. *)
let rec base_qnames ty acc =
  match ty with
  | Jtype.Ref q -> Qname.Set.add q acc
  | Jtype.Array el -> base_qnames el acc
  | Jtype.Prim _ | Jtype.Void -> acc

let referenced_qnames (d : Decl.t) =
  let acc = Qname.Set.empty in
  let acc = List.fold_left (fun acc q -> Qname.Set.add q acc) acc d.extends in
  let acc = List.fold_left (fun acc q -> Qname.Set.add q acc) acc d.implements in
  let acc =
    List.fold_left (fun acc (f : Member.field) -> base_qnames f.ftype acc) acc d.fields
  in
  let acc =
    List.fold_left
      (fun acc (m : Member.meth) ->
        let acc = base_qnames m.ret acc in
        List.fold_left (fun acc (_, ty) -> base_qnames ty acc) acc m.params)
      acc d.methods
  in
  List.fold_left
    (fun acc (c : Member.ctor) ->
      List.fold_left (fun acc (_, ty) -> base_qnames ty acc) acc c.cparams)
    acc d.ctors

let ensure_closed t =
  (* Fixpoint is unnecessary: opaque decls reference only Object. *)
  let missing =
    fold t ~init:Qname.Set.empty ~f:(fun acc d ->
        Qname.Set.union acc
          (Qname.Set.filter (fun q -> not (mem t q)) (referenced_qnames d)))
  in
  Qname.Set.iter (fun q -> add t (Decl.opaque q)) missing

let of_decls ds =
  let t = create () in
  List.iter
    (fun (d : Decl.t) ->
      if Qname.equal d.dname Qname.object_qname then
        (* Allow the data set to re-declare Object with real members. *)
        replace t d
      else add t d)
    ds;
  ensure_closed t;
  t

let direct_supers t q =
  if Qname.equal q Qname.object_qname then []
  else
    match find_opt t q with
    | None -> [ Qname.object_qname ]
    | Some d -> (
        match d.kind with
        | Decl.Interface ->
            (* Interface values widen to Object even without declared supers. *)
            if d.extends = [] then [ Qname.object_qname ] else d.extends
        | Decl.Class ->
            let super =
              match d.extends with [] -> [ Qname.object_qname ] | es -> es
            in
            super @ d.implements)

let supers t q =
  let rec go seen q =
    List.fold_left
      (fun seen s ->
        if Qname.Set.mem s seen then seen else go (Qname.Set.add s seen) s)
      seen (direct_supers t q)
  in
  go Qname.Set.empty q

let is_subclass t sub sup =
  Qname.equal sub sup
  || Qname.equal sup Qname.object_qname
  || Qname.Set.mem sup (supers t sub)

let rec is_subtype t sub sup =
  match (sub, sup) with
  | Jtype.Ref a, Jtype.Ref b -> is_subclass t a b
  | Jtype.Array _, Jtype.Ref b -> Qname.equal b Qname.object_qname
  | Jtype.Array a, Jtype.Array b ->
      Jtype.equal a b
      || (Jtype.is_reference a && Jtype.is_reference b && is_subtype t a b)
  | Jtype.Prim a, Jtype.Prim b -> a = b
  | Jtype.Void, Jtype.Void -> true
  | (Jtype.Ref _ | Jtype.Prim _ | Jtype.Void), _ | Jtype.Array _, _ -> false

let reverse_index t =
  match t.reverse with
  | Some r -> r
  | None ->
      let r =
        fold t ~init:Qname.Map.empty ~f:(fun acc (d : Decl.t) ->
            List.fold_left
              (fun acc sup ->
                let cur =
                  Option.value ~default:Qname.Set.empty (Qname.Map.find_opt sup acc)
                in
                Qname.Map.add sup (Qname.Set.add d.dname cur) acc)
              acc
              (direct_supers t d.dname))
      in
      t.reverse <- Some r;
      r

let subtypes t q =
  let r = reverse_index t in
  let direct sup = Option.value ~default:Qname.Set.empty (Qname.Map.find_opt sup r) in
  let rec go seen q =
    Qname.Set.fold
      (fun s seen ->
        if Qname.Set.mem s seen then seen else go (Qname.Set.add s seen) s)
      (direct q) seen
  in
  go Qname.Set.empty q

let depth t q =
  (* [visiting] breaks inheritance cycles in malformed inputs; the japi
     loader rejects them earlier, but depth must still terminate. *)
  let rec go visiting q =
    match Hashtbl.find_opt t.depth_cache (key q) with
    | Some d -> d
    | None ->
        if Qname.Set.mem q visiting then 0
        else
          let visiting = Qname.Set.add q visiting in
          let d =
            match direct_supers t q with
            | [] -> 0
            | supers -> 1 + List.fold_left (fun m s -> max m (go visiting s)) 0 supers
          in
          Hashtbl.replace t.depth_cache (key q) d;
          d
  in
  go Qname.Set.empty q

(* Force both lazy memos (the reverse subtype index and the depth cache) while
   the caller still holds sole ownership. The memos mutate on first use, so a
   hierarchy shared read-only across domains must be warmed first; after
   [warm], [subtypes] and [depth] only read. *)
let warm t =
  ignore (reverse_index t);
  iter t (fun (d : Decl.t) -> ignore (depth t d.dname))

let matching_meth (d : Decl.t) name ~arity =
  List.find_opt
    (fun (m : Member.meth) ->
      String.equal m.mname name && List.length m.params = arity)
    d.methods

let lookup_method t q name ~arity =
  let rec go visited q =
    if Qname.Set.mem q visited then (visited, None)
    else
      let visited = Qname.Set.add q visited in
      match find_opt t q with
      | None -> (visited, None)
      | Some d -> (
          match matching_meth d name ~arity with
          | Some m -> (visited, Some (q, m))
          | None ->
              List.fold_left
                (fun (visited, found) sup ->
                  match found with
                  | Some _ -> (visited, found)
                  | None -> go visited sup)
                (visited, None) (direct_supers t q))
  in
  snd (go Qname.Set.empty q)

let lookup_field t q name =
  let rec go visited q =
    if Qname.Set.mem q visited then (visited, None)
    else
      let visited = Qname.Set.add q visited in
      match find_opt t q with
      | None -> (visited, None)
      | Some d -> (
          match
            List.find_opt (fun (f : Member.field) -> String.equal f.fname name) d.fields
          with
          | Some f -> (visited, Some (q, f))
          | None ->
              List.fold_left
                (fun (visited, found) sup ->
                  match found with
                  | Some _ -> (visited, found)
                  | None -> go visited sup)
                (visited, None) (direct_supers t q))
  in
  snd (go Qname.Set.empty q)

let dispatch_targets t recv name ~arity =
  let candidates = Qname.Set.add recv (subtypes t recv) in
  Qname.Set.fold
    (fun q acc ->
      match find_opt t q with
      | None -> acc
      | Some d -> (
          match matching_meth d name ~arity with
          | Some m -> (q, m) :: acc
          | None -> acc))
    candidates []
  |> List.sort (fun (a, _) (b, _) -> Qname.compare a b)
