module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member

type loc = {
  file : string;
  line : int;
  col : int;
}

let no_loc = { file = "<none>"; line = 0; col = 0 }
let loc_known l = l.line > 0
let loc_string l = Printf.sprintf "%s:%d:%d" l.file l.line l.col

type texpr = {
  tdesc : tdesc;
  ty : Jtype.t;
  loc : loc;
}

and tdesc =
  | Tvar of string
  | Tnull
  | Tstring of string
  | Tint of int
  | Tbool of bool
  | Tclass_lit of Qname.t
  | Tfield of texpr * Qname.t * Member.field
  | Tstatic_field of Qname.t * Member.field
  | Tcall of texpr * Qname.t * Member.meth * texpr list
  | Tstatic_call of Qname.t * Member.meth * texpr list
  | Tnew of Qname.t * texpr list
  | Tcast of Jtype.t * texpr
  | Thole

type tstmt =
  | Tlocal of string * Jtype.t * texpr option
  | Tassign of string * texpr
  | Tfield_assign of Qname.t * Member.field * texpr
  | Texpr of texpr
  | Treturn of texpr option
  | Tif of texpr * tstmt list * tstmt list
  | Twhile of texpr * tstmt list

type tmeth = {
  owner : Qname.t;
  name : string;
  static : bool;
  params : (string * Jtype.t) list;
  ret : Jtype.t;
  body : tstmt list;
  mloc : loc;
}

type program = {
  hierarchy : Javamodel.Hierarchy.t;
  methods : tmeth list;
}

let method_key m =
  Printf.sprintf "%s.%s/%d" (Qname.to_string m.owner) m.name (List.length m.params)

let rec iter_expr e f =
  f e;
  match e.tdesc with
  | Tvar _ | Tnull | Tstring _ | Tint _ | Tbool _ | Tclass_lit _ | Thole -> ()
  | Tfield (r, _, _) -> iter_expr r f
  | Tstatic_field _ -> ()
  | Tcall (r, _, _, args) ->
      iter_expr r f;
      List.iter (fun a -> iter_expr a f) args
  | Tstatic_call (_, _, args) | Tnew (_, args) -> List.iter (fun a -> iter_expr a f) args
  | Tcast (_, inner) -> iter_expr inner f

let rec iter_stmt s f =
  match s with
  | Tlocal (_, _, Some e) -> iter_expr e f
  | Tlocal (_, _, None) -> ()
  | Tassign (_, e) -> iter_expr e f
  | Tfield_assign (_, _, e) -> iter_expr e f
  | Texpr e -> iter_expr e f
  | Treturn (Some e) -> iter_expr e f
  | Treturn None -> ()
  | Tif (c, a, b) ->
      iter_expr c f;
      List.iter (fun s -> iter_stmt s f) a;
      List.iter (fun s -> iter_stmt s f) b
  | Twhile (c, body) ->
      iter_expr c f;
      List.iter (fun s -> iter_stmt s f) body

let iter_exprs body f = List.iter (fun s -> iter_stmt s f) body
