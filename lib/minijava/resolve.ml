module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy

type ctx = {
  h : Hierarchy.t;
  by_simple : (string, Qname.t list) Hashtbl.t;
  file : string;
  package : string list;
  imports : string list;
  own : Qname.t;  (* enclosing class *)
  static_ctx : bool;
}

let fail ctx (pos : Ast.pos) msg =
  Japi.Error.fail ~file:ctx.file ~line:pos.Ast.line ~col:pos.Ast.col msg

let loc_of ctx (pos : Ast.pos) =
  { Tast.file = ctx.file; line = pos.Ast.line; col = pos.Ast.col }

(* Every typed expression is built through this, so positions never drop. *)
let tx ctx pos tdesc ty = { Tast.tdesc; ty; loc = loc_of ctx pos }

let simple_of_dotted s =
  match List.rev (String.split_on_char '.' s) with
  | last :: _ -> last
  | [] -> s

(* Resolve a class name written in source to a declared qname, or None. *)
let resolve_class_opt ctx name =
  if String.contains name '.' then
    let q = Qname.of_string name in
    if Hierarchy.mem ctx.h q then Some q else None
  else
    let in_pkg = Qname.make ~pkg:ctx.package name in
    if Hierarchy.mem ctx.h in_pkg then Some in_pkg
    else
      match
        List.find_opt (fun imp -> String.equal (simple_of_dotted imp) name) ctx.imports
      with
      | Some imp ->
          let q = Qname.of_string imp in
          if Hierarchy.mem ctx.h q then Some q else None
      | None -> (
          match Option.value ~default:[] (Hashtbl.find_opt ctx.by_simple name) with
          | [ q ] -> Some q
          | [] ->
              if String.equal name "Object" then Some Qname.object_qname
              else if String.equal name "String" then Some Qname.string_qname
              else None
          | _ :: _ :: _ -> None (* ambiguous: caller reports *))

let resolve_class ctx pos name =
  match resolve_class_opt ctx name with
  | Some q -> q
  | None -> fail ctx pos (Printf.sprintf "unknown class '%s'" name)

let resolve_rtype ctx pos (rt : Ast.rtype) =
  let base =
    if String.equal rt.Ast.base "void" then Jtype.Void
    else
      match Jtype.prim_of_string rt.Ast.base with
      | Some p -> Jtype.Prim p
      | None -> Jtype.Ref (resolve_class ctx pos rt.Ast.base)
  in
  let rec wrap ty n = if n = 0 then ty else wrap (Jtype.Array ty) (n - 1) in
  wrap base rt.Ast.dims

let class_class = Jtype.ref_of_string "java.lang.Class"

let base_qname ctx pos ty =
  match ty with
  | Jtype.Ref q -> q
  | Jtype.Array _ -> Qname.object_qname
  | Jtype.Prim _ | Jtype.Void ->
      fail ctx pos (Printf.sprintf "%s has no members" (Jtype.to_string ty))

let field_access ctx pos (recv : Tast.texpr) name =
  match (recv.Tast.ty, name) with
  | Jtype.Array _, "length" ->
      { Tast.tdesc = recv.Tast.tdesc; ty = Jtype.Prim Jtype.Int; loc = recv.Tast.loc }
  | _ -> (
      let q = base_qname ctx pos recv.Tast.ty in
      match Hierarchy.lookup_field ctx.h q name with
      | Some (owner, f) -> tx ctx pos (Tast.Tfield (recv, owner, f)) f.Member.ftype
      | None ->
          fail ctx pos
            (Printf.sprintf "no field '%s' in %s" name (Qname.to_string q)))

let own_field ctx name =
  if ctx.static_ctx then None
  else
    match Hierarchy.lookup_field ctx.h ctx.own name with
    | Some (owner, f) when not f.Member.fstatic -> Some (owner, f)
    | _ -> None

(* A resolved name chain is either a value or a bare class reference. *)
type head =
  | Value of Tast.texpr
  | Class_ref of Qname.t

let resolve_chain ctx env pos segs =
  match segs with
  | [] -> invalid_arg "resolve_chain: empty"
  | head :: rest -> (
      match List.assoc_opt head env with
      | Some ty ->
          let base = tx ctx pos (Tast.Tvar head) ty in
          Value (List.fold_left (fun acc seg -> field_access ctx pos acc seg) base rest)
      | None when own_field ctx head <> None ->
          (* an instance field of the enclosing class (locals shadow it) *)
          let owner, f = Option.get (own_field ctx head) in
          let this = tx ctx pos (Tast.Tvar "this") (Jtype.ref_ ctx.own) in
          let base = tx ctx pos (Tast.Tfield (this, owner, f)) f.Member.ftype in
          Value (List.fold_left (fun acc seg -> field_access ctx pos acc seg) base rest)
      | None ->
          (* Longest class prefix: try [head], then dotted prefixes. *)
          let rec try_prefix taken remaining =
            let name = String.concat "." (List.rev taken) in
            match resolve_class_opt ctx name with
            | Some q -> Some (q, remaining)
            | None -> (
                match remaining with
                | [] -> None
                | s :: rest -> try_prefix (s :: taken) rest)
          in
          (match try_prefix [ head ] rest with
          | None ->
              fail ctx pos
                (Printf.sprintf "unknown name '%s'" (String.concat "." segs))
          | Some (q, []) -> Class_ref q
          | Some (q, fname :: more) -> (
              (* first member must be a static field of the class *)
              match Hierarchy.lookup_field ctx.h q fname with
              | Some (owner, f) when f.Member.fstatic ->
                  let base = tx ctx pos (Tast.Tstatic_field (owner, f)) f.Member.ftype in
                  Value
                    (List.fold_left (fun acc seg -> field_access ctx pos acc seg) base more)
              | Some _ ->
                  fail ctx pos
                    (Printf.sprintf "field '%s' of %s is not static" fname
                       (Qname.to_string q))
              | None ->
                  fail ctx pos
                    (Printf.sprintf "no static field '%s' in %s" fname (Qname.to_string q)))))

let lookup_method_exn ctx pos q name ~arity =
  match Hierarchy.lookup_method ctx.h q name ~arity with
  | Some (owner, m) -> (owner, m)
  | None ->
      fail ctx pos
        (Printf.sprintf "no method '%s/%d' in %s" name arity (Qname.to_string q))

let rec resolve_expr ctx env (e : Ast.expr) : Tast.texpr =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Hole -> tx ctx pos Tast.Thole Jtype.object_t
  | Ast.Null -> tx ctx pos Tast.Tnull Jtype.object_t
  | Ast.Lit_string s -> tx ctx pos (Tast.Tstring s) Jtype.string_t
  | Ast.Lit_int n -> tx ctx pos (Tast.Tint n) (Jtype.Prim Jtype.Int)
  | Ast.Lit_bool b -> tx ctx pos (Tast.Tbool b) (Jtype.Prim Jtype.Boolean)
  | Ast.Class_lit name ->
      tx ctx pos (Tast.Tclass_lit (resolve_class ctx pos name)) class_class
  | Ast.Name segs -> (
      match resolve_chain ctx env pos segs with
      | Value v -> v
      | Class_ref q ->
          fail ctx pos
            (Printf.sprintf "'%s' is a class, not a value" (Qname.to_string q)))
  | Ast.Field (inner, name) ->
      let recv = resolve_expr ctx env inner in
      field_access ctx pos recv name
  | Ast.Call (inner, name, args) ->
      let recv = resolve_expr ctx env inner in
      let targs = List.map (resolve_expr ctx env) args in
      let q = base_qname ctx pos recv.Tast.ty in
      let owner, m = lookup_method_exn ctx pos q name ~arity:(List.length args) in
      tx ctx pos (Tast.Tcall (recv, owner, m, targs)) m.Member.ret
  | Ast.Name_call ([], name, args) ->
      (* unqualified call: own class *)
      let targs = List.map (resolve_expr ctx env) args in
      let owner, m = lookup_method_exn ctx pos ctx.own name ~arity:(List.length args) in
      if m.Member.mstatic then
        tx ctx pos (Tast.Tstatic_call (owner, m, targs)) m.Member.ret
      else if ctx.static_ctx then
        fail ctx pos
          (Printf.sprintf "cannot call instance method '%s' from a static method" name)
      else
        let this = tx ctx pos (Tast.Tvar "this") (Jtype.ref_ ctx.own) in
        tx ctx pos (Tast.Tcall (this, owner, m, targs)) m.Member.ret
  | Ast.Name_call (segs, name, args) -> (
      let targs = List.map (resolve_expr ctx env) args in
      match resolve_chain ctx env pos segs with
      | Value recv ->
          let q = base_qname ctx pos recv.Tast.ty in
          let owner, m = lookup_method_exn ctx pos q name ~arity:(List.length args) in
          tx ctx pos (Tast.Tcall (recv, owner, m, targs)) m.Member.ret
      | Class_ref q ->
          let owner, m = lookup_method_exn ctx pos q name ~arity:(List.length args) in
          if not m.Member.mstatic then
            fail ctx pos
              (Printf.sprintf "method '%s' of %s is not static" name (Qname.to_string q));
          tx ctx pos (Tast.Tstatic_call (owner, m, targs)) m.Member.ret)
  | Ast.New (name, args) ->
      let q = resolve_class ctx pos name in
      let targs = List.map (resolve_expr ctx env) args in
      (match Hierarchy.find_opt ctx.h q with
      | Some d when (not d.Decl.synthetic) && d.Decl.ctors <> [] ->
          let arity = List.length args in
          if
            not
              (List.exists
                 (fun (c : Member.ctor) -> List.length c.Member.cparams = arity)
                 d.Decl.ctors)
          then
            fail ctx pos
              (Printf.sprintf "no constructor of %s with %d arguments"
                 (Qname.to_string q) arity)
      | _ -> ());
      tx ctx pos (Tast.Tnew (q, targs)) (Jtype.ref_ q)
  | Ast.Cast (rt, inner) ->
      let ty = resolve_rtype ctx pos rt in
      let v = resolve_expr ctx env inner in
      tx ctx pos (Tast.Tcast (ty, v)) ty

let rec resolve_stmt ctx env (s : Ast.stmt) : (string * Jtype.t) list * Tast.tstmt =
  match s with
  | Ast.Local { typ; name; init; pos } ->
      let ty = resolve_rtype ctx pos typ in
      let tinit = Option.map (resolve_expr ctx env) init in
      (* a hole initializer takes the declared type of the local *)
      let tinit =
        match tinit with
        | Some ({ Tast.tdesc = Tast.Thole; _ } as hole) -> Some { hole with Tast.ty }
        | other -> other
      in
      ((name, ty) :: env, Tast.Tlocal (name, ty, tinit))
  | Ast.Assign { target; value; pos } ->
      if List.mem_assoc target env then
        (env, Tast.Tassign (target, resolve_expr ctx env value))
      else (
        match own_field ctx target with
        | Some (owner, f) ->
            (env, Tast.Tfield_assign (owner, f, resolve_expr ctx env value))
        | None -> fail ctx pos (Printf.sprintf "unknown variable '%s'" target))
  | Ast.Expr e -> (env, Tast.Texpr (resolve_expr ctx env e))
  | Ast.Return None -> (env, Tast.Treturn None)
  | Ast.Return (Some e) -> (env, Tast.Treturn (Some (resolve_expr ctx env e)))
  | Ast.If { cond; then_; else_ } ->
      let tcond = resolve_expr ctx env cond in
      (env, Tast.Tif (tcond, resolve_body ctx env then_, resolve_body ctx env else_))
  | Ast.While { cond; body } ->
      let tcond = resolve_expr ctx env cond in
      (env, Tast.Twhile (tcond, resolve_body ctx env body))

and resolve_body ctx env stmts =
  let _, rev =
    List.fold_left
      (fun (env, acc) s ->
        let env', ts = resolve_stmt ctx env s in
        (env', ts :: acc))
      (env, []) stmts
  in
  List.rev rev

(* ---------- program assembly ---------- *)

let client_decl_skeletons files =
  List.concat_map
    (fun (f : Ast.file) ->
      List.map (fun (c : Ast.class_def) -> Qname.make ~pkg:f.Ast.package c.Ast.c_name) f.Ast.classes)
    files

let build_simple_index h extra =
  let idx = Hashtbl.create 256 in
  let add q =
    let s = Qname.simple q in
    let existing = Option.value ~default:[] (Hashtbl.find_opt idx s) in
    if not (List.exists (Qname.equal q) existing) then Hashtbl.replace idx s (q :: existing)
  in
  Hierarchy.iter h (fun d -> if not d.Decl.synthetic then add d.Decl.dname);
  List.iter add extra;
  idx

let program ~api files =
  let h = Hierarchy.copy api in
  let skeletons = client_decl_skeletons files in
  let by_simple = build_simple_index h skeletons in
  (* Phase 1: declare the client classes so their signatures resolve. *)
  let mk_ctx (f : Ast.file) own static_ctx =
    {
      h;
      by_simple;
      file = f.Ast.src_file;
      package = f.Ast.package;
      imports = f.Ast.imports;
      own;
      static_ctx;
    }
  in
  List.iter
    (fun (f : Ast.file) ->
      List.iter
        (fun (c : Ast.class_def) ->
          let own = Qname.make ~pkg:f.Ast.package c.Ast.c_name in
          let ctx = mk_ctx f own false in
          let pos = c.Ast.c_pos in
          let methods =
            List.map
              (fun (m : Ast.meth_def) ->
                Member.meth ~static:m.Ast.m_static m.Ast.m_name
                  ~params:
                    (List.map
                       (fun (ty, name) -> (name, resolve_rtype ctx m.Ast.m_pos ty))
                       m.Ast.m_params)
                  ~ret:(resolve_rtype ctx m.Ast.m_pos m.Ast.m_ret))
              c.Ast.c_methods
          in
          let fields =
            List.map
              (fun (f : Ast.field_def) ->
                Member.field ~vis:Member.Private f.Ast.f_name
                  (resolve_rtype ctx f.Ast.f_pos f.Ast.f_type))
              c.Ast.c_fields
          in
          let extends =
            match c.Ast.c_extends with
            | Some e -> [ resolve_class ctx pos e ]
            | None -> []
          in
          let implements = List.map (resolve_class ctx pos) c.Ast.c_implements in
          Hierarchy.add h
            (Decl.make ~extends ~implements ~methods ~fields
               ~ctors:[ Member.ctor [] ]
               own))
        f.Ast.classes)
    files;
  Hierarchy.ensure_closed h;
  (* Phase 2: resolve method bodies. *)
  let methods =
    List.concat_map
      (fun (f : Ast.file) ->
        List.concat_map
          (fun (c : Ast.class_def) ->
            let own = Qname.make ~pkg:f.Ast.package c.Ast.c_name in
            List.map
              (fun (m : Ast.meth_def) ->
                let ctx = mk_ctx f own m.Ast.m_static in
                let params =
                  List.map
                    (fun (ty, name) -> (name, resolve_rtype ctx m.Ast.m_pos ty))
                    m.Ast.m_params
                in
                let env =
                  if m.Ast.m_static then params
                  else ("this", Jtype.ref_ own) :: params
                in
                {
                  Tast.owner = own;
                  name = m.Ast.m_name;
                  static = m.Ast.m_static;
                  params;
                  ret = resolve_rtype ctx m.Ast.m_pos m.Ast.m_ret;
                  body = resolve_body ctx env m.Ast.m_body;
                  mloc = loc_of ctx m.Ast.m_pos;
                })
              c.Ast.c_methods)
          f.Ast.classes)
      files
  in
  { Tast.hierarchy = h; methods }

let parse_program ~api sources =
  program ~api (List.map (fun (file, src) -> Parser.parse ~file src) sources)
