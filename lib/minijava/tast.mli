(** Typed mini-Java trees: every expression carries its static type and
    every member reference its declaring class — exactly the information the
    backward slicer needs to turn corpus statements into elementary
    jungloids. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member

type loc = {
  file : string;
  line : int;
  col : int;
}
(** Source position carried over from the lexer tokens, so downstream
    diagnostics can point at the offending expression. *)

val no_loc : loc
(** Placeholder for synthesized trees with no source position. *)

val loc_known : loc -> bool
(** [false] exactly for {!no_loc}-style placeholders (line 0). *)

val loc_string : loc -> string
(** ["file:line:col"], the conventional clickable rendering. *)

type texpr = {
  tdesc : tdesc;
  ty : Jtype.t;
  loc : loc;
}

and tdesc =
  | Tvar of string
  | Tnull
  | Tstring of string
  | Tint of int
  | Tbool of bool
  | Tclass_lit of Qname.t  (** has type [java.lang.Class] *)
  | Tfield of texpr * Qname.t * Member.field  (** receiver, declaring class *)
  | Tstatic_field of Qname.t * Member.field
  | Tcall of texpr * Qname.t * Member.meth * texpr list
      (** receiver, class declaring the resolved signature *)
  | Tstatic_call of Qname.t * Member.meth * texpr list
  | Tnew of Qname.t * texpr list
  | Tcast of Jtype.t * texpr
  | Thole  (** typed by its context, e.g. the declared type of the local *)

type tstmt =
  | Tlocal of string * Jtype.t * texpr option
  | Tassign of string * texpr
  | Tfield_assign of Qname.t * Member.field * texpr
      (** assignment to an instance field of the enclosing class *)
  | Texpr of texpr
  | Treturn of texpr option
  | Tif of texpr * tstmt list * tstmt list
  | Twhile of texpr * tstmt list

type tmeth = {
  owner : Qname.t;
  name : string;
  static : bool;
  params : (string * Jtype.t) list;
  ret : Jtype.t;
  body : tstmt list;
  mloc : loc;  (** position of the method header *)
}

type program = {
  hierarchy : Javamodel.Hierarchy.t;
      (** the API hierarchy extended with the corpus's own classes *)
  methods : tmeth list;  (** every method of every corpus class *)
}

val method_key : tmeth -> string
(** ["pkg.Class.name/arity"] — unique within a program; used by the
    inliner's call-graph approximation. *)

val iter_exprs : tstmt list -> (texpr -> unit) -> unit
(** Visit every expression (including subexpressions) in a body. *)
