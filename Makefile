# Entry points for CI and day-to-day work. `make check` is the gate a PR
# must pass: full build, the whole test suite (alcotest + qcheck + cram,
# including the cache/reach equivalence suites), and — when ocamlformat is
# installed — a formatting check. The format step is skipped, loudly, when
# the tool is absent so the gate still runs on minimal toolchains.

.PHONY: all build test check fmt lint serve-smoke bench-cache bench-analysis bench-server bench-parallel bench-topk bench-rank bench-refine bench-proto bench-scale bench-reload clean

all: build

build:
	dune build @all

test: build
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed — skipping format check"; \
	fi

# The analyzer over everything we ship: API-model and graph lint plus the
# bundled mining corpus, then the example corpus under examples/corpus/.
# --strict promotes warnings, so the gate only passes a spotless model.
# The deviant_*.java seeds are protocol-violating on purpose: the proto
# pass MUST flag them, so that run expects exit code exactly 1 under
# --strict (2 would be a usage/parse error, 0 a silent miss).
lint: build
	dune exec bin/prospector_cli.exe -- lint --strict
	dune exec bin/prospector_cli.exe -- lint --strict \
	  --corpus examples/corpus/editor_input.java \
	  --corpus examples/corpus/workspace_ast.java
	dune exec bin/prospector_cli.exe -- lint --strict --pass proto \
	  --corpus examples/corpus/editor_input.java \
	  --corpus examples/corpus/workspace_ast.java
	dune exec bin/prospector_cli.exe -- lint --strict --pass proto \
	  --corpus examples/corpus/deviant_out_of_order.java \
	  --corpus examples/corpus/deviant_missed_follow.java; \
	test $$? -eq 1

# One live daemon cycle over a real TCP socket: ephemeral port, health
# check, a query, graceful drain. The binary is invoked directly (not via
# `dune exec`) so the backgrounded daemon never holds the dune lock.
PROSPECTOR := _build/default/bin/prospector_cli.exe
serve-smoke: build
	@rm -f .smoke-port; \
	$(PROSPECTOR) serve --port 0 --port-file .smoke-port >/dev/null 2>&1 & \
	pid=$$!; \
	i=0; while [ ! -f .smoke-port ] && [ $$i -lt 200 ]; do sleep 0.1; i=$$((i+1)); done; \
	test -f .smoke-port || { echo "serve-smoke: daemon never bound a port"; kill $$pid 2>/dev/null; exit 1; }; \
	$(PROSPECTOR) client --port-file .smoke-port health && \
	$(PROSPECTOR) client --port-file .smoke-port query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 1 && \
	$(PROSPECTOR) client --port-file .smoke-port stats && \
	$(PROSPECTOR) client --port-file .smoke-port shutdown && \
	wait $$pid && echo "serve-smoke: OK"

check: build test lint serve-smoke bench-parallel bench-topk bench-rank bench-refine bench-proto bench-scale bench-reload fmt

# Regenerates BENCH_cache.json (cold/warm cache latency, pruned/unpruned
# search, O(1) miss rejection).
bench-cache: build
	dune exec bench/main.exe -- cache

# Regenerates BENCH_analysis.json (verified vs unverified query latency,
# per-pass lint timings).
bench-analysis: build
	dune exec bench/main.exe -- analysis

# Regenerates BENCH_server.json (warm-daemon throughput and p50/p95 latency
# over a live socket vs the cost of a one-shot CLI invocation).
bench-server: build
	dune exec bench/main.exe -- server

# Regenerates BENCH_parallel.json (CSR-vs-list search, 1/2/4-domain batch
# and mining scaling, with the host core count — the determinism booleans
# in it double as a smoke test, so this runs as part of `make check`).
bench-parallel: build
	dune exec bench/main.exe -- parallel

# Regenerates BENCH_topk.json (best-first vs exhaustive search at k=1/10/100:
# wall-clock, materialized-candidate counts, and byte-identity booleans).
# The section exits nonzero if best-first ever diverges from the exhaustive
# oracle, which makes this the equivalence gate inside `make check`.
bench-topk: build
	dune exec bench/main.exe -- topk

# Regenerates BENCH_rank.json (MRR and rank-of-known-answer deltas for the
# usage-weighted ranking vs the paper order, on Table 1 and a Truthgen
# ground-truth world). The section re-checks BestFirst+Mined against the
# Exhaustive+Mined oracle byte for byte and exits nonzero on divergence,
# so this is the mined counterpart of the `topk` gate in `make check`.
bench-rank: build
	dune exec bench/main.exe -- rank

# Regenerates BENCH_refine.json (questions-to-convergence and probe-selection
# latency for refine sessions on Table 1 and a layered synthetic world).
# The section exits nonzero if any session changes the answer (the survivor
# must be the original rank-1) or overruns ceil(log2 k) + 2 questions, so
# this is the spec-by-example gate inside `make check`.
bench-refine: build
	dune exec bench/main.exe -- refine

# Regenerates BENCH_proto.json (protocol mining time, lint throughput over
# the bundled corpus, and Table 1 query overhead at protocol=Warn vs Off).
# The section exits nonzero if the mined model flags any Table 1 solution
# or if best-first diverges from exhaustive under Warn/Filter, so this is
# the protocol-checking gate inside `make check`.
bench-proto: build
	dune exec bench/main.exe -- proto

# Regenerates BENCH_scale.json (mega-world generation, CSR kernel vs list
# search, package-cone sharded batch vs the sequential oracle, and mmap
# warm-start vs full-deserialize times, at 10k/100k methods by default —
# BENCH_SCALE_SIZES=10000,100000,1000000 adds the million-method row).
# The section exits nonzero on any shard/mmap identity divergence or a CSR
# kernel slowdown at >= 100k methods, so this is the scale gate inside
# `make check`.
bench-scale: build
	dune exec bench/main.exe -- --section scale

# Live-reload gate (BENCH_reload.json: single-class delta apply + reach
# patch vs cold rebuild, plus query p50/p99 under sustained churn against
# a full-rebuild baseline, at 10k/100k methods by default —
# BENCH_RELOAD_SIZES overrides). The section exits nonzero if the patched
# snapshot diverges from a cold rebuild, a patch fails to beat the rebuild
# stall, churn p99 is not strictly better than the rebuild baseline, or
# incremental patch time grows superlinearly across the sizes.
bench-reload: build
	dune exec bench/main.exe -- --section reload

clean:
	dune clean
