# Entry points for CI and day-to-day work. `make check` is the gate a PR
# must pass: full build, the whole test suite (alcotest + qcheck + cram,
# including the cache/reach equivalence suites), and — when ocamlformat is
# installed — a formatting check. The format step is skipped, loudly, when
# the tool is absent so the gate still runs on minimal toolchains.

.PHONY: all build test check fmt lint bench-cache bench-analysis clean

all: build

build:
	dune build @all

test: build
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed — skipping format check"; \
	fi

# The analyzer over everything we ship: API-model and graph lint plus the
# bundled mining corpus, then the example corpus under examples/corpus/.
# --strict promotes warnings, so the gate only passes a spotless model.
lint: build
	dune exec bin/prospector_cli.exe -- lint --strict
	dune exec bin/prospector_cli.exe -- lint --strict \
	  --corpus examples/corpus/editor_input.java \
	  --corpus examples/corpus/workspace_ast.java

check: build test lint fmt

# Regenerates BENCH_cache.json (cold/warm cache latency, pruned/unpruned
# search, O(1) miss rejection).
bench-cache: build
	dune exec bench/main.exe -- cache

# Regenerates BENCH_analysis.json (verified vs unverified query latency,
# per-pass lint timings).
bench-analysis: build
	dune exec bench/main.exe -- analysis

clean:
	dune clean
