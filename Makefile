# Entry points for CI and day-to-day work. `make check` is the gate a PR
# must pass: full build, the whole test suite (alcotest + qcheck + cram,
# including the cache/reach equivalence suites), and — when ocamlformat is
# installed — a formatting check. The format step is skipped, loudly, when
# the tool is absent so the gate still runs on minimal toolchains.

.PHONY: all build test check fmt bench-cache clean

all: build

build:
	dune build @all

test: build
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed — skipping format check"; \
	fi

check: build test fmt

# Regenerates BENCH_cache.json (cold/warm cache latency, pruned/unpruned
# search, O(1) miss rejection).
bench-cache: build
	dune exec bench/main.exe -- cache

clean:
	dune clean
