(* The query cache: cached and uncached pipelines must be indistinguishable
   — same jungloids, same rank keys, same order — over the whole curated
   workload; plus the Qcache LRU mechanics and the generation-bump
   invalidation rule. *)

module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Query = Prospector.Query
module Qcache = Prospector.Qcache
module Problems = Apidata.Problems

let workload () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let qs =
    List.map
      (fun (p : Problems.t) -> Query.query p.Problems.tin p.Problems.tout)
      Problems.all
  in
  (graph, hierarchy, qs)

(* ---------- cached = uncached over the full Table 1 workload ---------- *)

let check_results_equal name (a : Query.result list) (b : Query.result list) =
  Alcotest.(check int) (name ^ ": result count") (List.length a) (List.length b);
  List.iteri
    (fun i (x, y) ->
      let n = Printf.sprintf "%s: result %d" name i in
      Alcotest.(check bool)
        (n ^ " jungloid")
        true
        (Prospector.Jungloid.equal x.Query.jungloid y.Query.jungloid);
      Alcotest.(check bool)
        (n ^ " rank key")
        true
        (Prospector.Rank.compare_key x.Query.key y.Query.key = 0);
      Alcotest.(check string) (n ^ " code") x.Query.code y.Query.code)
    (List.combine a b)

let test_cached_equals_uncached () =
  let graph, hierarchy, qs = workload () in
  let engine = Query.engine ~graph ~hierarchy () in
  List.iter
    (fun (q : Query.t) ->
      let plain = Query.run ~graph ~hierarchy q in
      let cold = Query.run_cached engine q in
      let warm = Query.run_cached engine q in
      let name =
        Printf.sprintf "%s -> %s" (Jtype.to_string q.Query.tin)
          (Jtype.to_string q.Query.tout)
      in
      check_results_equal (name ^ " cold") plain cold;
      check_results_equal (name ^ " warm") plain warm)
    qs;
  let st = Query.engine_stats engine in
  Alcotest.(check int) "one miss per distinct query" (List.length qs)
    st.Qcache.s_misses;
  Alcotest.(check int) "one hit per repeat" (List.length qs) st.Qcache.s_hits

let test_batch_equals_uncached () =
  let graph, hierarchy, qs = workload () in
  let engine = Query.engine ~graph ~hierarchy () in
  (* include duplicates: the batch must answer them all, in input order *)
  let batch_in = qs @ qs in
  let out = Query.run_batch engine batch_in in
  Alcotest.(check int) "batch answers every query" (List.length batch_in)
    (List.length out);
  List.iter2
    (fun q (q', rs) ->
      Alcotest.(check bool) "batch preserves input order" true (q = q');
      check_results_equal "batch" (Query.run ~graph ~hierarchy q) rs)
    batch_in out

let test_multi_cached_equals_uncached () =
  let graph, hierarchy, _ = workload () in
  let engine = Query.engine ~graph ~hierarchy () in
  let vars =
    [
      ("ep", Jtype.ref_of_string "org.eclipse.ui.IEditorPart");
      ("page", Jtype.ref_of_string "org.eclipse.ui.IWorkbenchPage");
    ]
  in
  let tout = Jtype.ref_of_string "org.eclipse.ui.texteditor.IDocumentProvider" in
  let plain = Query.run_multi ~graph ~hierarchy ~vars ~tout () in
  let cold = Query.run_multi_cached engine ~vars ~tout () in
  let warm = Query.run_multi_cached engine ~vars ~tout () in
  Alcotest.(check bool) "multi cold identical" true (plain = cold);
  Alcotest.(check bool) "multi warm identical" true (plain = warm);
  let st = Query.engine_stats engine in
  Alcotest.(check int) "multi: one miss then one hit" 1 st.Qcache.s_misses;
  Alcotest.(check int) "multi hits" 1 st.Qcache.s_hits

(* ---------- generation-bump invalidation ---------- *)

let tiny_world () =
  let h =
    Japi.Loader.load_string ~file:"tiny"
      {|
      package t;
      class A { }
      class B { }
      |}
  in
  (h, Prospector.Sig_graph.build h)

let test_invalidation_on_graph_change () =
  let h, g = tiny_world () in
  let engine = Query.engine ~graph:g ~hierarchy:h () in
  let q = Query.query "t.A" "t.B" in
  Alcotest.(check (list reject)) "no path yet" [] (Query.run_cached engine q);
  (* splice in an edge, as Mining.Enrich would *)
  let a = Option.get (Graph.find_type_node g (Jtype.ref_of_string "t.A")) in
  let b = Option.get (Graph.find_type_node g (Jtype.ref_of_string "t.B")) in
  Graph.add_edge g ~src:a
    (Prospector.Elem.Downcast
       { from_ = Graph.node_type g a; to_ = Graph.node_type g b })
    ~dst:b;
  let rs = Query.run_cached engine q in
  Alcotest.(check bool) "cached result reflects the mutated graph" true
    (rs <> []);
  check_results_equal "post-mutation" (Query.run ~graph:g ~hierarchy:h q) rs;
  let st = Query.engine_stats engine in
  Alcotest.(check bool) "the engine registered an invalidation" true
    (st.Qcache.s_invalidations >= 1)

let test_explicit_invalidate () =
  let h, g = tiny_world () in
  let engine = Query.engine ~graph:g ~hierarchy:h () in
  let q = Query.query "t.A" "t.B" in
  ignore (Query.run_cached engine q);
  ignore (Query.run_cached engine q);
  Query.invalidate engine;
  ignore (Query.run_cached engine q);
  let st = Query.engine_stats engine in
  Alcotest.(check bool) "invalidate flushes: second miss" true
    (st.Qcache.s_misses >= 2);
  Alcotest.(check bool) "invalidations counted" true
    (st.Qcache.s_invalidations >= 1)

(* ---------- Qcache LRU mechanics ---------- *)

let test_lru_eviction () =
  let c = Qcache.create ~capacity:3 () in
  Qcache.add c "a" 1;
  Qcache.add c "b" 2;
  Qcache.add c "c" 3;
  Alcotest.(check (list string)) "mru order" [ "c"; "b"; "a" ]
    (Qcache.keys_mru_first c);
  Qcache.add c "d" 4;
  Alcotest.(check bool) "lru evicted" false (Qcache.mem c "a");
  Alcotest.(check int) "still at capacity" 3 (Qcache.length c);
  Alcotest.(check (list string)) "order after eviction" [ "d"; "c"; "b" ]
    (Qcache.keys_mru_first c);
  Alcotest.(check int) "eviction counted" 1 (Qcache.stats c).Qcache.s_evictions

let test_lru_recency_refresh () =
  let c = Qcache.create ~capacity:3 () in
  Qcache.add c "a" 1;
  Qcache.add c "b" 2;
  Qcache.add c "c" 3;
  Alcotest.(check (option int)) "find a" (Some 1) (Qcache.find c "a");
  Qcache.add c "d" 4;
  (* "a" was refreshed to MRU, so "b" is the victim *)
  Alcotest.(check bool) "refreshed entry survives" true (Qcache.mem c "a");
  Alcotest.(check bool) "true LRU evicted" false (Qcache.mem c "b")

let test_counters_and_clear () =
  let c = Qcache.create ~capacity:2 () in
  Alcotest.(check (option int)) "miss on empty" None (Qcache.find c "x");
  Qcache.add c "x" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Qcache.find c "x");
  Qcache.clear c;
  Alcotest.(check int) "cleared" 0 (Qcache.length c);
  let st = Qcache.stats c in
  Alcotest.(check int) "hits survive clear" 1 st.Qcache.s_hits;
  Alcotest.(check int) "misses survive clear" 1 st.Qcache.s_misses;
  Alcotest.(check int) "clear counted as invalidation" 1 st.Qcache.s_invalidations;
  Alcotest.(check bool) "hit_rate sane" true
    (abs_float (Qcache.hit_rate st -. 0.5) < 1e-9)

let test_find_or_add_computes_once () =
  let c = Qcache.create ~capacity:4 () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  Alcotest.(check int) "computed" 42 (Qcache.find_or_add c "k" compute);
  Alcotest.(check int) "cached" 42 (Qcache.find_or_add c "k" compute);
  Alcotest.(check int) "compute ran once" 1 !calls

let test_capacity_validation () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Qcache.create: capacity must be >= 1") (fun () ->
      ignore (Qcache.create ~capacity:0 ()))

let test_overwrite_refreshes () =
  let c = Qcache.create ~capacity:2 () in
  Qcache.add c "a" 1;
  Qcache.add c "b" 2;
  Qcache.add c "a" 10;
  Alcotest.(check (option int)) "overwritten value" (Some 10) (Qcache.find c "a");
  Alcotest.(check int) "no duplicate entry" 2 (Qcache.length c);
  Qcache.add c "c" 3;
  Alcotest.(check bool) "b was the LRU" false (Qcache.mem c "b");
  Alcotest.(check bool) "a survived" true (Qcache.mem c "a")

let test_merge_stats () =
  let a = Qcache.create ~capacity:2 () and b = Qcache.create ~capacity:3 () in
  ignore (Qcache.find a "x");
  Qcache.add a "x" 1;
  ignore (Qcache.find a "x");
  ignore (Qcache.find b "y");
  let m = Qcache.merge_stats (Qcache.stats a) (Qcache.stats b) in
  Alcotest.(check int) "hits summed" 1 m.Qcache.s_hits;
  Alcotest.(check int) "misses summed" 2 m.Qcache.s_misses;
  Alcotest.(check int) "capacity summed" 5 m.Qcache.s_capacity

let () =
  Alcotest.run "cache"
    [
      ( "equivalence",
        [
          Alcotest.test_case "cached = uncached, full workload" `Quick
            test_cached_equals_uncached;
          Alcotest.test_case "batch = uncached, with duplicates" `Quick
            test_batch_equals_uncached;
          Alcotest.test_case "multi-source cached = uncached" `Quick
            test_multi_cached_equals_uncached;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "graph mutation invalidates" `Quick
            test_invalidation_on_graph_change;
          Alcotest.test_case "explicit invalidate" `Quick test_explicit_invalidate;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "recency refresh" `Quick test_lru_recency_refresh;
          Alcotest.test_case "counters and clear" `Quick test_counters_and_clear;
          Alcotest.test_case "find_or_add computes once" `Quick
            test_find_or_add_computes_once;
          Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
          Alcotest.test_case "overwrite refreshes" `Quick test_overwrite_refreshes;
          Alcotest.test_case "merge_stats" `Quick test_merge_stats;
        ] );
    ]
