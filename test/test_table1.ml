(* Integration tests over the curated data set: the Table 1 reproduction,
   the paper's worked examples on the full model, and the Section 3.2
   ranking anecdotes. These assert the *shape* of the paper's results:
   which queries succeed, how many at rank 1, and where the two designed
   failures fall. *)

module Jtype = Javamodel.Jtype
module Query = Prospector.Query
module Assist = Prospector.Assist
module Sig_graph = Prospector.Sig_graph
module Problems = Apidata.Problems

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let graph = Apidata.Api.default_graph
let hierarchy = Apidata.Api.hierarchy

let measured =
  lazy (Problems.run_all ~graph:(graph ()) ~hierarchy:(hierarchy ()) ())

(* ---------- data-set sanity ---------- *)

let test_model_loads () =
  let h = hierarchy () in
  check_bool "hundreds of declarations" true (Javamodel.Hierarchy.size h > 150)

let test_corpus_resolves () =
  let p = Apidata.Api.program () in
  check_bool "corpus methods" true (List.length p.Minijava.Tast.methods >= 12)

let test_mining_stats () =
  let _, stats = Apidata.Api.jungloid_graph () in
  check_bool "all corpus casts seen" true (stats.Mining.Enrich.casts_in_corpus >= 12);
  check_bool "examples extracted" true (stats.Mining.Enrich.examples_extracted >= 10);
  check_bool "edges added" true (stats.Mining.Enrich.edges_added > 0)

(* ---------- Table 1 aggregate claims ---------- *)

let test_table1_found_count () =
  let ms = Lazy.force measured in
  let found = List.filter Problems.found ms in
  check_int "18 of 20 found" 18 (List.length found)

let test_table1_failures_match_paper () =
  let ms = Lazy.force measured in
  List.iter
    (fun (m : Problems.measured) ->
      let paper_found = m.problem.Problems.paper <> Problems.Not_found in
      check_bool
        (Printf.sprintf "problem %d: paper %b" m.problem.Problems.id paper_found)
        paper_found (Problems.found m))
    ms

let test_table1_rank_one_majority () =
  let ms = Lazy.force measured in
  let rank1 = List.filter (fun m -> m.Problems.rank = Some 1) ms in
  (* paper: 11 of 20 at rank 1; our curated model gives 12 *)
  check_bool "at least 11 rank-1 rows" true (List.length rank1 >= 11)

let test_table1_found_within_five () =
  let ms = Lazy.force measured in
  List.iter
    (fun (m : Problems.measured) ->
      match m.Problems.rank with
      | Some r when m.problem.Problems.paper <> Problems.Not_found ->
          check_bool
            (Printf.sprintf "problem %d rank %d < 5" m.problem.Problems.id r)
            true (r <= 5)
      | _ -> ())
    ms

let test_table1_interactive_latency () =
  let ms = Lazy.force measured in
  List.iter
    (fun (m : Problems.measured) ->
      check_bool
        (Printf.sprintf "problem %d under 1.1s" m.problem.Problems.id)
        true (m.Problems.time_s < 1.1))
    ms

let test_mined_ranking_no_worse () =
  (* The usage-weighted order is mined from the same corpus the Table 1
     idioms come from, so every known solution must surface at least as
     high under [Mined] as under [Paper] — the regression that pins the
     model actually helping on the curated workload rather than shuffling
     it. (A problem Paper cannot find may stay unfound.) *)
  let g = graph () and h = hierarchy () in
  let mined =
    Problems.run_all
      ~settings:{ Query.default_settings with ranking = Query.Mined }
      ~edge_cost:(Mining.Usage.edge_cost (Apidata.Api.usage ()))
      ~graph:g ~hierarchy:h ()
  in
  List.iter2
    (fun (p : Problems.measured) (m : Problems.measured) ->
      match (p.Problems.rank, m.Problems.rank) with
      | Some pr, Some mr ->
          check_bool
            (Printf.sprintf "problem %d: mined rank %d <= paper rank %d"
               p.problem.Problems.id mr pr)
            true (mr <= pr)
      | Some pr, None ->
          Alcotest.failf "problem %d: found at %d under paper, lost under mined"
            p.problem.Problems.id pr
      | None, _ -> ())
    (Lazy.force measured) mined

(* ---------- specific rows the paper narrates ---------- *)

let result_of id =
  List.find (fun (m : Problems.measured) -> m.problem.Problems.id = id)
    (Lazy.force measured)

let test_row1_idiom_beats_htmlparser () =
  let m = result_of 1 in
  check_bool "desired at 1" true (m.Problems.rank = Some 1);
  (* the HTMLParser distractor appears but ranks below the idiom *)
  let texts =
    List.map (fun r -> Prospector.Jungloid.to_expression r.Query.jungloid) m.Problems.results
  in
  check_bool "HTMLParser among candidates" true
    (List.exists (contains ~sub:"HTMLParser") texts)

let test_row5_uses_mined_cast () =
  let m = result_of 5 in
  match m.Problems.rank with
  | Some 1 ->
      let top = List.hd m.Problems.results in
      check_bool "mined downcast" true
        (Prospector.Jungloid.contains_downcast top.Query.jungloid)
  | _ -> Alcotest.fail "expected rank 1 for the FigureCanvas row"

let test_row19_protected_blocks () =
  let m = result_of 19 in
  check_int "no results at all" 0 (List.length m.Problems.results)

let test_row19_extension_unblocks () =
  (* With protected members admitted in both the signature graph and the
     miner, the desired jungloid becomes synthesizable — the extension the
     paper sketches for this failure. *)
  let h = hierarchy () in
  let config = { Sig_graph.default_config with include_protected = true } in
  let g = Sig_graph.build ~config h in
  let _ =
    Mining.Enrich.enrich ~include_protected:true g (Apidata.Api.program ())
  in
  let q =
    Query.query "org.eclipse.gef.editparts.AbstractGraphicalEditPart"
      "org.eclipse.draw2d.ConnectionLayer"
  in
  match Query.run ~graph:g ~hierarchy:h q with
  | [] -> Alcotest.fail "expected the protected extension to find getLayer"
  | top :: _ -> check_bool "uses getLayer" true (contains ~sub:"getLayer(" top.Query.code)

let test_row20_crowded_but_present () =
  let m = result_of 20 in
  (* the desired jungloid is synthesizable, just crowded out of the top *)
  check_bool "top results full" true (List.length m.Problems.results >= 5);
  check_bool "desired not in top 5" true (not (Problems.found m))

(* ---------- worked examples on the full model ---------- *)

let test_parsing_example_full_model () =
  let rs =
    Query.run ~graph:(graph ()) ~hierarchy:(hierarchy ())
      (Query.query "org.eclipse.core.resources.IFile" "org.eclipse.jdt.core.dom.ASTNode")
  in
  check_bool "found" true (rs <> []);
  let top = List.hd rs in
  check_bool "JavaCore link" true
    (contains ~sub:"JavaCore.createCompilationUnitFrom" top.Query.code);
  check_bool "AST.parseCompilationUnit" true
    (contains ~sub:"AST.parseCompilationUnit" top.Query.code)

let test_faq270_full_model () =
  let rs =
    Query.run ~graph:(graph ()) ~hierarchy:(hierarchy ())
      (Query.query "org.eclipse.ui.IEditorPart" "org.eclipse.ui.texteditor.IDocumentProvider")
  in
  check_bool "found" true (rs <> []);
  (* among the top results, the registry jungloid of Section 2.2 appears *)
  let some_registry =
    List.exists (fun r -> contains ~sub:"getDocumentProvider" r.Query.code) rs
  in
  check_bool "registry route present" true some_registry

let test_debugger_example_full_model () =
  let rs =
    Query.run ~graph:(graph ()) ~hierarchy:(hierarchy ())
      (Query.query "org.eclipse.debug.ui.IDebugView"
         "org.eclipse.jdt.internal.debug.ui.display.JavaInspectExpression")
  in
  check_bool "mined chain found" true (rs <> [])

let test_xmleditor_generality_anecdote () =
  (* (void, IEditorPart): jungloids returning the too-specific XMLEditor
     must not outrank the equal-or-shorter ones returning IEditorPart via a
     plainer type — the Section 3.2 anecdote. The top result must not be an
     XMLEditor construction. *)
  let rs =
    Query.run ~graph:(graph ()) ~hierarchy:(hierarchy ())
      (Query.query "void" "org.eclipse.ui.IEditorPart")
  in
  check_bool "results exist" true (rs <> []);
  check_bool "top result is not XMLEditor" true
    (not (contains ~sub:"XMLEditor" (List.hd rs).Query.code));
  check_bool "XMLEditor construction appears lower down" true
    (List.exists (fun r -> contains ~sub:"XMLEditor" r.Query.code) rs)

(* ---------- study problems via assist ---------- *)

let test_study_problems_tool_ranks () =
  let g = graph () and h = hierarchy () in
  List.iter
    (fun (p : Apidata.Study.t) ->
      match Apidata.Study.tool_rank ~graph:g ~hierarchy:h p with
      | Some r ->
          check_bool
            (Printf.sprintf "study %d rank %d <= 5" p.Apidata.Study.id r)
            true (r <= 5)
      | None ->
          Alcotest.failf "study problem %d not found by assist" p.Apidata.Study.id)
    Apidata.Study.all

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "table1"
    [
      ( "dataset",
        [
          tc "model loads" test_model_loads;
          tc "corpus resolves" test_corpus_resolves;
          tc "mining stats" test_mining_stats;
        ] );
      ( "aggregate",
        [
          tc "18 of 20 found" test_table1_found_count;
          tc "failures match paper" test_table1_failures_match_paper;
          tc "rank-1 majority" test_table1_rank_one_majority;
          tc "found within five" test_table1_found_within_five;
          tc "interactive latency" test_table1_interactive_latency;
          tc "mined ranking no worse" test_mined_ranking_no_worse;
        ] );
      ( "rows",
        [
          tc "row 1: idiom beats HTMLParser" test_row1_idiom_beats_htmlparser;
          tc "row 5: mined cast" test_row5_uses_mined_cast;
          tc "row 19: protected blocks" test_row19_protected_blocks;
          tc "row 19: extension unblocks" test_row19_extension_unblocks;
          tc "row 20: crowded out" test_row20_crowded_but_present;
        ] );
      ( "worked examples",
        [
          tc "section 1 parsing" test_parsing_example_full_model;
          tc "faq 270" test_faq270_full_model;
          tc "figure 2 debugger" test_debugger_example_full_model;
          tc "xmleditor generality" test_xmleditor_generality_anecdote;
        ] );
      ("study", [ tc "tool ranks" test_study_problems_tool_ranks ]);
    ]
