(* The server layer: Proto's JSON codec round-trips arbitrary values
   (qcheck), typed request envelopes round-trip, the decoder rejects hostile
   input, Service answers concurrent clients byte-identically to a
   sequential engine, and the TCP transport survives malformed, oversized,
   and vanishing clients. *)

module Proto = Prospector_server.Proto
module Service = Prospector_server.Service
module Server = Prospector_server.Server
module Metrics = Prospector_server.Metrics
module Query = Prospector.Query
module Util = Prospector.Util
module Problems = Apidata.Problems

(* ---------- qcheck: JSON round-trip ---------- *)

(* Strings as arbitrary byte sequences: the codec's contract is that any
   OCaml string survives encode/decode, so the generator leans on quotes,
   backslashes, control bytes, and high bytes. *)
let gen_string =
  QCheck2.Gen.(
    let nasty = oneofl [ '"'; '\\'; '\n'; '\r'; '\t'; '\b'; '\012'; '\x00'; '\x1f'; '\x7f'; '\xc3'; '\xa9'; '\xff' ] in
    let byte = oneof [ nasty; printable; map Char.chr (int_range 0 255) ] in
    string_size ~gen:byte (int_range 0 24))

let gen_float =
  (* the encoder spells non-finite floats as null, so only finite values
     can round-trip; keep the generator inside the contract *)
  QCheck2.Gen.(
    map (fun f -> if Float.is_finite f then f else 0.0) float)

let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Proto.Null;
              map (fun b -> Proto.Bool b) bool;
              map (fun i -> Proto.Int i) int;
              map (fun f -> Proto.Float f) gen_float;
              map (fun s -> Proto.Str s) gen_string;
            ]
        in
        if n <= 0 then leaf
        else
          frequency
            [
              (3, leaf);
              (1, map (fun xs -> Proto.Arr xs) (list_size (int_range 0 4) (self (n / 2))));
              ( 1,
                map
                  (fun kvs -> Proto.Obj kvs)
                  (list_size (int_range 0 4) (pair gen_string (self (n / 2)))) );
            ]))

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"of_string (to_string j) = j" ~count:500 gen_json
    (fun j -> Proto.of_string (Proto.to_string j) = j)

let prop_parse_never_crashes =
  (* parse must return a value or an Error — never raise, never loop *)
  QCheck2.Test.make ~name:"parse never raises on arbitrary bytes" ~count:500
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 64))
    (fun s ->
      match Proto.parse s with Ok _ | Error _ -> true)

(* ---------- qcheck: request envelope round-trip ---------- *)

let gen_id =
  QCheck2.Gen.(
    oneof
      [
        return Proto.Null;
        map (fun i -> Proto.Int i) int;
        map (fun s -> Proto.Str s) gen_string;
      ])

let gen_opt_int = QCheck2.Gen.(opt (int_range 0 100))

(* The codec carries any string; validation is Service's job. *)
let gen_opt_strategy =
  QCheck2.Gen.(
    oneof
      [
        return None;
        return (Some "best-first");
        return (Some "exhaustive");
        map Option.some gen_string;
      ])

let gen_opt_ranking =
  QCheck2.Gen.(
    oneof
      [
        return None;
        return (Some "paper");
        return (Some "mined");
        map Option.some gen_string;
      ])

let gen_opt_protocol =
  QCheck2.Gen.(
    oneof
      [
        return None;
        return (Some "off");
        return (Some "warn");
        return (Some "filter");
        map Option.some gen_string;
      ])

let gen_request =
  QCheck2.Gen.(
    let name = string_size ~gen:printable (int_range 1 12) in
    oneof
      [
        (let* tin = gen_string and* tout = gen_string in
         let* max_results = gen_opt_int and* slack = gen_opt_int in
         let* strategy = gen_opt_strategy in
         let* ranking = gen_opt_ranking in
         let* protocol = gen_opt_protocol in
         let* cluster = bool in
         return
           (Proto.Query
              {
                tin;
                tout;
                max_results;
                slack;
                strategy;
                ranking;
                protocol;
                cluster;
              }));
        (let* tout = gen_string in
         let* vars = list_size (int_range 0 3) (pair name gen_string) in
         let* max_results = gen_opt_int and* slack = gen_opt_int in
         let* strategy = gen_opt_strategy in
         let* ranking = gen_opt_ranking in
         let* protocol = gen_opt_protocol in
         return
           (Proto.Assist
              { tout; vars; max_results; slack; strategy; ranking; protocol }));
        (let* pairs = list_size (int_range 0 3) (pair gen_string gen_string) in
         let* max_results = gen_opt_int and* slack = gen_opt_int in
         let* strategy = gen_opt_strategy in
         let* ranking = gen_opt_ranking in
         let* protocol = gen_opt_protocol in
         return
           (Proto.Batch { pairs; max_results; slack; strategy; ranking; protocol }));
        (let* tin = gen_string and* tout = gen_string in
         return (Proto.Lint { tin; tout }));
        return Proto.Stats;
        return Proto.Health;
        return Proto.Shutdown;
      ])

let gen_envelope =
  QCheck2.Gen.(
    let* id = gen_id and* req = gen_request in
    return { Proto.id; req })

let prop_envelope_roundtrip =
  QCheck2.Test.make ~name:"request_of_json (envelope_to_json e) = Ok e" ~count:300
    gen_envelope (fun e ->
      Proto.request_of_json (Proto.envelope_to_json e) = Ok e)

let prop_envelope_wire_roundtrip =
  (* the same, through the actual wire encoding *)
  QCheck2.Test.make ~name:"envelope survives the full wire cycle" ~count:300
    gen_envelope (fun e ->
      Proto.request_of_json (Proto.of_string (Proto.to_string (Proto.envelope_to_json e)))
      = Ok e)

(* ---------- qcheck: Util.contains vs a naive oracle ---------- *)

let naive_contains ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0

let prop_contains_matches_naive =
  QCheck2.Test.make ~name:"Util.contains agrees with the naive scan" ~count:1000
    QCheck2.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 30))
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 5)))
    (fun (s, sub) -> Util.contains ~sub s = naive_contains ~sub s)

(* ---------- decoder edge cases (deterministic) ---------- *)

let test_escaping_cases () =
  let roundtrip s =
    match Proto.of_string (Proto.to_string (Proto.Str s)) with
    | Proto.Str s' -> Alcotest.(check string) (String.escaped s) s s'
    | _ -> Alcotest.fail "string did not decode to a string"
  in
  List.iter roundtrip
    [
      "";
      "plain";
      "quote \" backslash \\ slash /";
      "\n\r\t\b\012";
      "\x00\x01\x1f";
      "\x7f\x80\xff";
      "caf\xc3\xa9";
      String.make 3 '\\';
    ];
  let decodes input expect =
    match Proto.of_string input with
    | Proto.Str s -> Alcotest.(check string) input expect s
    | _ -> Alcotest.fail "expected a string"
  in
  (* \u escapes expand to UTF-8, surrogate pairs included *)
  decodes {|"\u0041"|} "A";
  decodes {|"\u00e9"|} "\xc3\xa9";
  decodes {|"\u20ac"|} "\xe2\x82\xac";
  decodes {|"\ud83d\ude00"|} "\xf0\x9f\x98\x80";
  decodes {|"\u0000"|} "\x00";
  decodes {|"a\/b"|} "a/b"

let expect_parse_error input =
  match Proto.parse input with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed input %S" input)

let test_decoder_rejects () =
  List.iter expect_parse_error
    [
      "";
      "tru";
      "nul";
      "{";
      "[1, 2";
      "{\"a\" 1}";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"\\u12";
      "\"\\ud800\"";  (* lone high surrogate *)
      "\"\\udc00\"";  (* lone low surrogate *)
      "\"\\ud800\\u0041\"";  (* high surrogate paired with a non-surrogate *)
      "1.2.3";
      "1e";
      "- 1";
      "{} garbage";
      "[1] [2]";
      "01a";
    ];
  (* nesting bound: max_depth is enforced, one below it is fine *)
  let nested n = String.make n '[' ^ String.make n ']' in
  (match Proto.parse (nested Proto.max_depth) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("rejected legal nesting: " ^ m));
  expect_parse_error (nested (Proto.max_depth + 2))

let test_number_decoding () =
  let check_is input expect =
    Alcotest.(check bool) input true (Proto.of_string input = expect)
  in
  check_is "0" (Proto.Int 0);
  check_is "-7" (Proto.Int (-7));
  check_is "1.5" (Proto.Float 1.5);
  check_is "1e3" (Proto.Float 1000.0);
  check_is "-2.5e-1" (Proto.Float (-0.25));
  check_is (string_of_int max_int) (Proto.Int max_int);
  check_is (string_of_int min_int) (Proto.Int min_int);
  (* magnitude beyond the int range degrades to float, not an error *)
  match Proto.of_string "123456789012345678901234567890" with
  | Proto.Float _ -> ()
  | _ -> Alcotest.fail "big integer literal should decode as a float"

(* ---------- the service: shared fixtures ---------- *)

let world = lazy (Apidata.Api.default_graph (), Apidata.Api.hierarchy ())

let fresh_service ?deadline_s () =
  let graph, hierarchy = Lazy.force world in
  Service.create ?deadline_s ~engine:(Query.engine ~graph ~hierarchy ()) ()

let line_of req = Proto.to_string (Proto.envelope_to_json { Proto.id = Proto.Null; req })

let query_line ?max_results ?slack tin tout =
  line_of
    (Proto.Query
       {
         tin;
         tout;
         max_results;
         slack;
         strategy = None;
         ranking = None;
         protocol = None;
         cluster = false;
       })

let field path j =
  List.fold_left
    (fun acc k -> match acc with Some o -> Proto.member k o | None -> None)
    (Some j) path

let response_ok line =
  match Proto.parse line with
  | Error m -> Alcotest.fail ("response is not JSON: " ^ m)
  | Ok j -> (
      match Proto.member "ok" j with
      | Some (Proto.Bool b) -> (b, j)
      | _ -> Alcotest.fail ("response has no ok field: " ^ line))

let expect_error_code line code =
  let ok, j = response_ok line in
  Alcotest.(check bool) "error reply" false ok;
  match field [ "error"; "code" ] j with
  | Some (Proto.Str c) -> Alcotest.(check string) "error code" code c
  | _ -> Alcotest.fail ("no error.code in " ^ line)

let test_service_errors () =
  let svc = fresh_service () in
  expect_error_code (Service.handle_line svc "not json at all") "bad_request";
  expect_error_code (Service.handle_line svc "{\"op\": 42}") "bad_request";
  expect_error_code (Service.handle_line svc "{\"op\": \"frobnicate\"}") "unknown_op";
  expect_error_code
    (Service.handle_line svc "{\"op\": \"query\", \"tin\": \"void\"}")
    "bad_request";
  (* a poisoned query becomes an internal error reply, not an exception *)
  let reply = Service.handle_line svc "{\"op\": \"query\", \"tin\": \"\", \"tout\": \"\"}" in
  let ok, _ = response_ok reply in
  ignore ok;
  (* the service survived either way: a normal request still works *)
  let ok, j = response_ok (Service.handle_line svc "{\"op\": \"health\"}") in
  Alcotest.(check bool) "health after garbage" true ok;
  match field [ "status" ] j with
  | Some (Proto.Str "ok") -> ()
  | _ -> Alcotest.fail "health status"

let test_deadline_timeout () =
  (* deadline 0: every engine-touching request exceeds it deterministically *)
  let svc = fresh_service ~deadline_s:0.0 () in
  let reply =
    Service.handle_line svc (query_line "void" "org.eclipse.ui.texteditor.DocumentProviderRegistry")
  in
  expect_error_code reply "timeout";
  (* and the error shows up in the metrics *)
  let ops = Metrics.ops (Service.metrics svc) in
  match List.assoc_opt "query" ops with
  | Some s ->
      Alcotest.(check int) "one query recorded" 1 s.Metrics.count;
      Alcotest.(check int) "recorded as an error" 1 s.Metrics.errors
  | None -> Alcotest.fail "no query metrics"

let test_shutdown_flag () =
  let svc = fresh_service () in
  Alcotest.(check bool) "fresh service not draining" false (Service.shutdown_requested svc);
  let ok, j = response_ok (Service.handle_line svc "{\"op\": \"shutdown\"}") in
  Alcotest.(check bool) "shutdown acknowledged" true ok;
  (match field [ "status" ] j with
  | Some (Proto.Str "draining") -> ()
  | _ -> Alcotest.fail "shutdown status");
  Alcotest.(check bool) "draining after shutdown" true (Service.shutdown_requested svc)

(* ---------- concurrency: N threads = sequential, byte for byte ---------- *)

let workload_lines () =
  let qs =
    List.filteri (fun i _ -> i < 8) Problems.all
    |> List.map (fun (p : Problems.t) -> query_line p.Problems.tin p.Problems.tout)
  in
  let extras =
    [
      query_line ~max_results:3 "void" "org.eclipse.ui.texteditor.DocumentProviderRegistry";
      line_of
        (Proto.Batch
           {
             pairs = [ ("void", "org.eclipse.ui.texteditor.DocumentProviderRegistry") ];
             max_results = Some 2;
             slack = None;
             strategy = None;
             ranking = None;
             protocol = None;
           });
      line_of
        (Proto.Lint
           { tin = "void"; tout = "org.eclipse.ui.texteditor.DocumentProviderRegistry" });
    ]
  in
  qs @ extras

let test_concurrent_equals_sequential () =
  let lines = Array.of_list (workload_lines ()) in
  let n = Array.length lines in
  (* the sequential truth, from its own engine over the same graph *)
  let seq = fresh_service () in
  let expected = Array.map (Service.handle_line seq) lines in
  (* one shared service, hammered from eight threads in rotated orders *)
  let shared = fresh_service () in
  let n_threads = 8 in
  let got = Array.init n_threads (fun _ -> Array.make n "") in
  let threads =
    List.init n_threads (fun k ->
        Thread.create
          (fun () ->
            for step = 0 to n - 1 do
              let i = (step + k) mod n in
              got.(k).(i) <- Service.handle_line shared lines.(i)
            done)
          ())
  in
  List.iter Thread.join threads;
  for k = 0 to n_threads - 1 do
    for i = 0 to n - 1 do
      Alcotest.(check string)
        (Printf.sprintf "thread %d, request %d" k i)
        expected.(i) got.(k).(i)
    done
  done;
  (* and the responses really are Query.run's answers: spot-check one *)
  let graph, hierarchy = Lazy.force world in
  let q = Query.query "void" "org.eclipse.ui.texteditor.DocumentProviderRegistry" in
  let plain = Query.run ~graph ~hierarchy q in
  let _, j = response_ok (Service.handle_line shared (query_line "void" "org.eclipse.ui.texteditor.DocumentProviderRegistry")) in
  (match field [ "results" ] j with
  | Some (Proto.Arr rs) ->
      Alcotest.(check int) "result count matches Query.run" (List.length plain)
        (List.length rs);
      List.iteri
        (fun i (r, item) ->
          match Proto.member "code" item with
          | Some (Proto.Str code) ->
              Alcotest.(check string)
                (Printf.sprintf "result %d code" i)
                r.Query.code code
          | _ -> Alcotest.fail "result without code")
        (List.combine plain rs)
  | _ -> Alcotest.fail "query response without results");
  (* every thread's every request hit the one shared engine *)
  Alcotest.(check int) "metrics counted every request"
    ((n_threads * n) + 1)
    (Metrics.total_requests (Service.metrics shared))

(* ---------- metrics ---------- *)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  (* 100 samples at ~1 ms, 5 at ~100 ms: p50 stays small, p99 jumps *)
  for _ = 1 to 100 do
    Metrics.record m ~op:"query" ~ok:true 0.001
  done;
  for _ = 1 to 5 do
    Metrics.record m ~op:"query" ~ok:false 0.1
  done;
  match List.assoc_opt "query" (Metrics.ops m) with
  | None -> Alcotest.fail "no query stats"
  | Some s ->
      Alcotest.(check int) "count" 105 s.Metrics.count;
      Alcotest.(check int) "errors" 5 s.Metrics.errors;
      Alcotest.(check bool) "p50 near 1 ms" true (s.Metrics.p50_ms <= 2.0);
      Alcotest.(check bool) "p99 sees the slow tail" true (s.Metrics.p99_ms >= 64.0);
      Alcotest.(check bool) "max >= p99" true (s.Metrics.max_ms >= s.Metrics.p99_ms /. 2.0);
      Alcotest.(check int) "total" 105 (Metrics.total_requests m)

(* ---------- the TCP transport ---------- *)

let connect port =
  Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let send_recv (ic, oc) line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let test_tcp_end_to_end () =
  let service = fresh_service () in
  let config =
    { Server.default_config with Server.port = 0; workers = 2; max_request_bytes = 2048 }
  in
  let srv = Server.create ~config service in
  Server.start srv;
  let port = Server.port srv in
  Alcotest.(check bool) "bound an ephemeral port" true (port > 0);
  (* a client that connects and vanishes must not hurt anyone *)
  let ic0, _ = connect port in
  Unix.close (Unix.descr_of_in_channel ic0);
  let conn = connect port in
  (* health *)
  let ok, j = response_ok (send_recv conn "{\"op\": \"health\"}") in
  Alcotest.(check bool) "tcp health ok" true ok;
  (match field [ "status" ] j with
  | Some (Proto.Str "ok") -> ()
  | _ -> Alcotest.fail "tcp health status");
  (* a query over TCP = the same query straight through a service *)
  let qline = query_line "void" "org.eclipse.ui.texteditor.DocumentProviderRegistry" in
  let expected = Service.handle_line (fresh_service ()) qline in
  Alcotest.(check string) "tcp query byte-identical" expected (send_recv conn qline);
  (* malformed line: error reply, connection lives *)
  expect_error_code (send_recv conn "][") "bad_request";
  (* oversized line: too_large reply, connection still lives *)
  let big = "{\"op\": \"health\", \"pad\": \"" ^ String.make 4096 'x' ^ "\"}" in
  expect_error_code (send_recv conn big) "too_large";
  let ok, _ = response_ok (send_recv conn "{\"op\": \"health\"}") in
  Alcotest.(check bool) "health after oversize" true ok;
  (* stats over the wire: sane structure, live counters *)
  let ok, j = response_ok (send_recv conn "{\"op\": \"stats\"}") in
  Alcotest.(check bool) "tcp stats ok" true ok;
  (match field [ "graph"; "nodes" ] j with
  | Some (Proto.Int nodes) -> Alcotest.(check bool) "graph nonempty" true (nodes > 0)
  | _ -> Alcotest.fail "stats without graph.nodes");
  (match field [ "requests" ] j with
  | Some (Proto.Int r) -> Alcotest.(check bool) "requests counted" true (r >= 4)
  | _ -> Alcotest.fail "stats without requests");
  (* graceful drain over the wire *)
  let ok, j = response_ok (send_recv conn "{\"op\": \"shutdown\"}") in
  Alcotest.(check bool) "tcp shutdown ok" true ok;
  (match field [ "status" ] j with
  | Some (Proto.Str "draining") -> ()
  | _ -> Alcotest.fail "tcp shutdown status");
  Server.wait srv

(* ---------- runner ---------- *)

let () =
  Alcotest.run "server"
    [
      ( "proto-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_json_roundtrip;
            prop_parse_never_crashes;
            prop_envelope_roundtrip;
            prop_envelope_wire_roundtrip;
            prop_contains_matches_naive;
          ] );
      ( "proto-edges",
        [
          Alcotest.test_case "escaping round-trips" `Quick test_escaping_cases;
          Alcotest.test_case "decoder rejects hostile input" `Quick test_decoder_rejects;
          Alcotest.test_case "number decoding" `Quick test_number_decoding;
        ] );
      ( "service",
        [
          Alcotest.test_case "error replies" `Quick test_service_errors;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
          Alcotest.test_case "shutdown flag" `Quick test_shutdown_flag;
          Alcotest.test_case "concurrent = sequential" `Quick
            test_concurrent_equals_sequential;
        ] );
      ( "metrics",
        [ Alcotest.test_case "percentiles" `Quick test_metrics_percentiles ] );
      ( "tcp",
        [ Alcotest.test_case "end to end" `Quick test_tcp_end_to_end ] );
    ]
