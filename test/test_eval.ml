(* The spec-by-example layer: the evaluator's semantic stubs and its fuel
   bound, the probe engine's partition invariants (qcheck: a chosen probe
   never produces an empty branch), session convergence, the Table 1
   end-to-end refine runs (the survivor must be the original rank-1), and
   the server's refine ops — session table, TTL eviction, drain behavior,
   metrics coverage. *)

module Jtype = Javamodel.Jtype
module Qname = Javamodel.Qname
module Member = Javamodel.Member
module Elem = Prospector.Elem
module Jungloid = Prospector.Jungloid
module Query = Prospector.Query
module Value = Prospector_eval.Value
module Evaluator = Prospector_eval.Evaluator
module Probe = Prospector_eval.Probe
module Session = Prospector_eval.Session
module Proto = Prospector_server.Proto
module Service = Prospector_server.Service
module Metrics = Prospector_server.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------- building blocks ---------- *)

let string_q = Qname.of_string "java.lang.String"
let string_t = Jtype.Ref string_q

let string_meth name ret =
  Elem.Instance_call
    {
      owner = string_q;
      meth = Member.meth name ~params:[] ~ret;
      input = Elem.Receiver;
    }

let trim = string_meth "trim" string_t
let lower = string_meth "toLowerCase" string_t
let upper = string_meth "toUpperCase" string_t
let length = string_meth "length" (Jtype.Prim Jtype.Int)

(* An API element no stub layer models: the provenance layer covers
   reference-returning calls, so going dark takes an unknown method with a
   primitive result. *)
let dark =
  Elem.Instance_call
    {
      owner = Qname.of_string "com.example.Widget";
      meth = Member.meth "frobnicate" ~params:[] ~ret:(Jtype.Prim Jtype.Int);
      input = Elem.Receiver;
    }

let chain elems = Jungloid.make ~input:string_t elems

(* ---------- evaluator units ---------- *)

let test_string_stubs () =
  match Evaluator.eval ~input:(Value.Str "  Mixed Case  ") (chain [ trim; lower ]) with
  | Evaluator.Done (Value.Str s) -> check_string "trim then lower" "mixed case" s
  | _ -> Alcotest.fail "expected a concrete string"

let test_length_stub () =
  match Evaluator.eval ~input:(Value.Str "abcd") (chain [ length ]) with
  | Evaluator.Done (Value.Int n) -> check_int "length" 4 n
  | _ -> Alcotest.fail "expected a concrete int"

let test_fuel_bound () =
  let j = chain [ trim; lower; upper ] in
  (match Evaluator.eval ~fuel:2 ~input:(Value.Str "x") j with
  | Evaluator.Fuel_exhausted -> ()
  | Evaluator.Done _ -> Alcotest.fail "fuel 2 must not finish a 3-step chain");
  match Evaluator.eval ~fuel:3 ~input:(Value.Str "x") j with
  | Evaluator.Done _ -> ()
  | Evaluator.Fuel_exhausted -> Alcotest.fail "fuel 3 finishes a 3-step chain"

let test_opaque_absorbs () =
  (* an unmodeled element goes dark, and dark stays dark downstream *)
  (match Evaluator.eval ~input:(Value.Str "x") (chain [ dark ]) with
  | Evaluator.Done v -> check_bool "unmodeled is opaque" true (Value.is_opaque v)
  | _ -> Alcotest.fail "expected Done");
  match Evaluator.eval ~input:(Value.Str "x") (chain [ dark; trim ]) with
  | Evaluator.Done v ->
      check_bool "opaque absorbs a modeled step" true (Value.is_opaque v)
  | _ -> Alcotest.fail "expected Done"

let test_widen_invisible_downcast_visible () =
  let widen = Elem.Widen { from_ = string_t; to_ = string_t } in
  (match Evaluator.eval ~input:(Value.Str "x") (chain [ widen ]) with
  | Evaluator.Done (Value.Str s) -> check_string "widen is the identity" "x" s
  | _ -> Alcotest.fail "widen must not change the value");
  let cast =
    Elem.Downcast { from_ = string_t; to_ = Jtype.ref_of_string "com.example.Sub" }
  in
  match Evaluator.eval ~input:(Value.Str "x") (chain [ cast ]) with
  | Evaluator.Done (Value.Obj { cls; _ }) ->
      check_string "downcast names the static type" "(Sub)" cls
  | _ -> Alcotest.fail "downcast must wrap the value"

(* ---------- probe: qcheck partition invariants ---------- *)

(* Random candidate sets over a small pool of string chains (some of which
   go dark through the unmodeled element); the chosen probe must always be
   a genuine partition of the candidate list: every branch non-empty, every
   candidate in exactly one branch, at least two branches. *)

let pool = [| [ trim ]; [ lower ]; [ upper ]; [ length ]; [ trim; lower ];
              [ upper; length ]; [ dark ]; [ dark; trim ]; [ trim; upper ] |]

let gen_candidates =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* picks = list_size (return n) (int_range 0 (Array.length pool - 1)) in
    return
      (List.map
         (fun i -> { Probe.key = "input"; jungloid = chain pool.(i) })
         picks))

let prop_no_empty_branch =
  QCheck2.Test.make ~count:300
    ~name:"chosen probe partitions a non-singleton candidate set" gen_candidates
    (fun cands ->
      match Probe.choose cands with
      | None -> true
      | Some q ->
          let n = List.length cands in
          let members =
            List.concat_map (fun (g : Probe.group) -> g.Probe.members) q.Probe.groups
          in
          List.length q.Probe.groups >= 2
          && List.for_all (fun (g : Probe.group) -> g.Probe.members <> []) q.Probe.groups
          && List.sort compare members = List.init n Fun.id)

(* ---------- sessions over real query results ---------- *)

let world = lazy (Apidata.Api.default_graph (), Apidata.Api.hierarchy ())

let results_for tin tout =
  let graph, hierarchy = Lazy.force world in
  Query.run ~graph ~hierarchy (Query.query tin tout)

let test_session_converges () =
  let results = results_for "java.io.File" "java.io.BufferedReader" in
  check_bool "query gave several candidates" true (List.length results >= 4);
  let cands = List.map (fun result -> { Session.source = None; result }) results in
  let rec drive sess =
    if Session.converged sess then sess
    else
      match Simstudy.Programmer.answer_probe sess ~desired:(List.hd results) with
      | None -> sess
      | Some choice -> (
          match Session.answer sess ~choice with
          | Ok sess' -> drive sess'
          | Error _ -> Alcotest.fail "programmer picked an invalid choice")
  in
  let final = drive (Session.start cands) in
  check_bool "converged" true (Session.converged final);
  check_bool "within k - 1 answers" true
    (Session.questions_asked final <= List.length cands - 1);
  check_int "rank-1 survives" 0 (Session.best_rank final)

let test_refine_table1_e2e () =
  let graph, hierarchy = Lazy.force world in
  let runs = Simstudy.Study_sim.refine_table1 ~graph ~hierarchy () in
  check_bool "table 1 yields sessions" true (List.length runs >= 15);
  List.iter
    (fun ((p : Apidata.Problems.t), (r : Simstudy.Study_sim.refine_run)) ->
      let label what = Printf.sprintf "problem %d: %s" p.Apidata.Problems.id what in
      check_bool (label "survivor is rank-1") true r.Simstudy.Study_sim.to_rank1;
      if r.Simstudy.Study_sim.candidates >= 4 then
        check_int (label "fully disambiguated") 1 r.Simstudy.Study_sim.live_at_end;
      let bound =
        int_of_float
          (ceil (log (float_of_int (max 1 r.Simstudy.Study_sim.candidates)) /. log 2.))
        + 2
      in
      check_bool (label "questions within the log2 bound") true
        (r.Simstudy.Study_sim.questions <= bound))
    runs

(* ---------- the server's refine ops ---------- *)

let fresh_service ?session_ttl_s () =
  let graph, hierarchy = Lazy.force world in
  Service.create ?session_ttl_s ~engine:(Query.engine ~graph ~hierarchy ()) ()

let line_of req = Proto.to_string (Proto.envelope_to_json { Proto.id = Proto.Null; req })

let refine_start ?tin ?(vars = []) tout =
  line_of
    (Proto.Refine_start
       {
         tin;
         tout;
         vars;
         max_results = None;
         slack = None;
         strategy = None;
         ranking = None;
         protocol = None;
       })

let parse_ok reply =
  match Proto.parse reply with
  | Error e -> Alcotest.fail ("unparsable reply: " ^ e)
  | Ok j -> j

let str_field k j =
  match Proto.member k j with Some (Proto.Str s) -> s | _ -> Alcotest.fail ("no field " ^ k)

let error_code reply =
  match Option.bind (Proto.member "error" (parse_ok reply)) (Proto.member "code") with
  | Some (Proto.Str c) -> c
  | _ -> Alcotest.fail "expected an error reply"

let test_service_refine_flow () =
  let svc = fresh_service () in
  let j =
    parse_ok
      (Service.handle_line svc (refine_start ~tin:"java.io.File" "java.io.BufferedReader"))
  in
  let sid = str_field "session" j in
  check_bool "a question is pending" true (Proto.member "question" j <> None);
  check_int "one live session" 1 (Service.live_sessions svc);
  (* the gauge mirrors the table *)
  check_bool "gauge set" true
    (List.mem_assoc "refine_sessions" (Metrics.gauges (Service.metrics svc)));
  (* follow branch 0 until convergence; k candidates bound the loop *)
  let rec drive n =
    if n = 0 then Alcotest.fail "session never converged"
    else
      let j =
        parse_ok (Service.handle_line svc (line_of (Proto.Refine_answer { session = sid; choice = 0 })))
      in
      match Proto.member "converged" j with
      | Some (Proto.Bool true) -> j
      | _ -> drive (n - 1)
  in
  let final = drive 16 in
  check_bool "a result is attached" true (Proto.member "result" final <> None);
  (* status echoes the converged state without advancing anything *)
  let status =
    parse_ok (Service.handle_line svc (line_of (Proto.Refine_status { session = sid })))
  in
  check_bool "status converged" true
    (Proto.member "converged" status = Some (Proto.Bool true));
  (* a converged session has no pending question to answer *)
  check_string "answering a converged session" "bad_request"
    (error_code (Service.handle_line svc (line_of (Proto.Refine_answer { session = sid; choice = 0 }))));
  (* stop frees the slot; later ops see session_expired *)
  ignore (Service.handle_line svc (line_of (Proto.Refine_stop { session = sid })));
  check_int "no live sessions" 0 (Service.live_sessions svc);
  check_string "stopped session is expired" "session_expired"
    (error_code (Service.handle_line svc (line_of (Proto.Refine_status { session = sid }))))

let test_service_refine_ttl () =
  (* ttl 0: the session is evicted by the sweep at the next refine op *)
  let svc = fresh_service ~session_ttl_s:0.0 () in
  let j =
    parse_ok
      (Service.handle_line svc (refine_start ~tin:"java.io.File" "java.io.BufferedReader"))
  in
  let sid = str_field "session" j in
  check_string "evicted session answers session_expired" "session_expired"
    (error_code (Service.handle_line svc (line_of (Proto.Refine_answer { session = sid; choice = 0 }))))

let test_service_refine_drain () =
  let svc = fresh_service () in
  let j =
    parse_ok
      (Service.handle_line svc (refine_start ~tin:"java.io.File" "java.io.BufferedReader"))
  in
  let sid = str_field "session" j in
  Service.request_shutdown svc;
  check_int "drain clears the table" 0 (Service.live_sessions svc);
  check_string "in-flight id answers shutting_down" "shutting_down"
    (error_code (Service.handle_line svc (line_of (Proto.Refine_answer { session = sid; choice = 0 }))));
  check_string "new sessions answer shutting_down" "shutting_down"
    (error_code (Service.handle_line svc (refine_start ~tin:"java.io.File" "java.io.BufferedReader")))

let test_service_refine_metrics () =
  let svc = fresh_service () in
  let j =
    parse_ok
      (Service.handle_line svc (refine_start ~tin:"java.io.File" "java.io.BufferedReader"))
  in
  let sid = str_field "session" j in
  ignore (Service.handle_line svc (line_of (Proto.Refine_status { session = sid })));
  ignore (Service.handle_line svc (line_of (Proto.Refine_stop { session = sid })));
  let stats = parse_ok (Service.handle_line svc (line_of Proto.Stats)) in
  (match Proto.member "sessions" stats with
  | Some (Proto.Int 0) -> ()
  | _ -> Alcotest.fail "stats must report 0 sessions after stop");
  let ops = Proto.member "ops" stats in
  List.iter
    (fun op ->
      match Option.bind ops (Proto.member op) with
      | Some (Proto.Obj _) -> ()
      | _ -> Alcotest.fail ("stats lacks latency coverage for " ^ op))
    [ "refine_start"; "refine_status"; "refine_stop" ]

(* ---------- runner ---------- *)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "eval"
    [
      ( "evaluator",
        [
          Alcotest.test_case "string stubs" `Quick test_string_stubs;
          Alcotest.test_case "length stub" `Quick test_length_stub;
          Alcotest.test_case "fuel bound" `Quick test_fuel_bound;
          Alcotest.test_case "opaque absorbs" `Quick test_opaque_absorbs;
          Alcotest.test_case "widen invisible, downcast visible" `Quick
            test_widen_invisible_downcast_visible;
        ] );
      ("probe", [ qcheck prop_no_empty_branch ]);
      ( "session",
        [
          Alcotest.test_case "converges on a real query" `Quick test_session_converges;
          Alcotest.test_case "table 1 end-to-end" `Quick test_refine_table1_e2e;
        ] );
      ( "service",
        [
          Alcotest.test_case "refine flow" `Quick test_service_refine_flow;
          Alcotest.test_case "ttl eviction" `Quick test_service_refine_ttl;
          Alcotest.test_case "drain" `Quick test_service_refine_drain;
          Alcotest.test_case "metrics coverage" `Quick test_service_refine_metrics;
        ] );
    ]
