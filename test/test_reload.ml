(* Live-reload invariants (DESIGN §9). The correctness oracle: a
   delta-patched frozen snapshot is lane-for-lane identical to a cold
   rebuild from the patched model, whichever path (spliced or rebuilt) the
   delta took — checked over random op sequences on Apigen worlds. The
   reach index patched through [Reach.patch] must be bit-for-bit the fresh
   build. Printed delta-sized .japi files must reload to the same model,
   and the cone-scoped cache invalidation counters must add up. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Decl = Javamodel.Decl
module Member = Javamodel.Member
module Hierarchy = Javamodel.Hierarchy
module Graph = Prospector.Graph
module Sig_graph = Prospector.Sig_graph
module Delta = Prospector.Delta
module Reach = Prospector.Reach
module Qcache = Prospector.Qcache
module Stats = Prospector.Stats
module Rng = Corpusgen.Rng
module Apigen = Corpusgen.Apigen

(* ---------- random delta sequences over Apigen worlds ---------- *)

let real_decls h =
  List.filter (fun (d : Decl.t) -> not d.Decl.synthetic) (Hierarchy.decls h)

(* A method whose types are already interned, so a lone add stays
   spliceable; [tag] keeps names unique across the op sequence. *)
let fresh_meth rng h tag =
  let ret = Jtype.Ref (Rng.pick rng (real_decls h)).Decl.dname in
  Member.meth (Printf.sprintf "zzReload%d" tag) ~params:[] ~ret

(* Generate [nops] ops against a private copy of [h], applying each to the
   copy as we go — later ops must see earlier effects, exactly as
   [Delta.apply] validates them. *)
let build_ops rng h nops =
  let hcur = Hierarchy.copy h in
  let tag = ref 0 in
  let next_tag () = incr tag; !tag in
  let rec gen_op retries =
    let decls =
      List.filter
        (fun (d : Decl.t) -> Qname.to_string d.Decl.dname <> "java.lang.Object")
        (real_decls hcur)
    in
    let d = Rng.pick rng decls in
    match Rng.int rng 5 with
    | 0 ->
        (* body-only replacement: the spliced shape *)
        let d' = { d with Decl.methods = fresh_meth rng hcur (next_tag ()) :: d.Decl.methods } in
        Hierarchy.replace hcur d';
        Delta.Replace_class d'
    | 1 ->
        let m = fresh_meth rng hcur (next_tag ()) in
        Hierarchy.replace hcur { d with Decl.methods = d.Decl.methods @ [ m ] };
        Delta.Add_method (d.Decl.dname, m)
    | 2 when d.Decl.methods <> [] ->
        let victim = (Rng.pick rng d.Decl.methods).Member.mname in
        let keep = List.filter (fun (m : Member.meth) -> m.Member.mname <> victim) d.Decl.methods in
        Hierarchy.replace hcur { d with Decl.methods = keep };
        Delta.Remove_method (d.Decl.dname, victim)
    | 3 ->
        let q = Qname.of_string (Printf.sprintf "zz.Fresh%d" (next_tag ())) in
        let m = fresh_meth rng hcur (next_tag ()) in
        let fresh = Decl.make ~methods:[ m ] q in
        Hierarchy.add hcur fresh;
        Delta.Add_class fresh
    | 4 when List.length decls > 2 ->
        Hierarchy.remove hcur d.Decl.dname;
        Delta.Remove_class d.Decl.dname
    | _ -> if retries = 0 then gen_op 1 else gen_op 0
    (* the two guarded arms can fail their guards; retry resamples *)
  in
  List.init nops (fun _ -> gen_op 0)

let world_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 10 40 in
    let* nops = int_range 1 6 in
    return (seed, classes, nops))

let freeze_cold h = Graph.freeze (Sig_graph.build h)

(* Bit-for-bit reach equality through the marshalable dump, with sharing
   expanded so physical reuse inside the patched index cannot skew the
   byte comparison. *)
let reach_equal a b =
  Marshal.to_string (Reach.dump a) [ Marshal.No_sharing ]
  = Marshal.to_string (Reach.dump b) [ Marshal.No_sharing ]

let roundtrips h =
  let h' = Japi.Loader.load_files (Japi.Printer.print_files h) in
  let a = real_decls h and b = real_decls h' in
  List.length a = List.length b && List.for_all2 Decl.equal a b

let prop_patched_equals_cold =
  QCheck2.Test.make ~name:"patched frozen = cold-rebuilt frozen, lane for lane"
    ~count:60 world_gen (fun (seed, classes, nops) ->
      let h = Apigen.generate { Apigen.default_params with classes; seed } in
      let frozen = freeze_cold h in
      let rng = Rng.create ~seed:(seed lxor 0x5eed) in
      let ops = build_ops rng h nops in
      match Delta.apply ~hierarchy:h ~frozen ops with
      | Error errs ->
          QCheck2.Test.fail_reportf "delta rejected: %s"
            (String.concat "; "
               (List.map (fun (e : Delta.error) -> e.Delta.reason) errs))
      | Ok patch ->
          let cold = freeze_cold patch.Delta.p_hierarchy in
          Delta.frozen_equal patch.Delta.p_frozen cold
          && Graph.frozen_generation patch.Delta.p_frozen
             > Graph.frozen_generation frozen
          && roundtrips patch.Delta.p_hierarchy)

let prop_reach_patch_identity =
  QCheck2.Test.make ~name:"Reach.patch = Reach.build_frozen on the patched snapshot"
    ~count:40 world_gen (fun (seed, classes, nops) ->
      let h = Apigen.generate { Apigen.default_params with classes; seed } in
      let frozen = freeze_cold h in
      let old = Reach.build_frozen frozen in
      let rng = Rng.create ~seed:(seed lxor 0xcafe) in
      let ops = build_ops rng h nops in
      match Delta.apply ~hierarchy:h ~frozen ops with
      | Error _ -> false
      | Ok patch ->
          let patched =
            Reach.patch ~old ~touched:patch.Delta.p_touched patch.Delta.p_frozen
          in
          reach_equal patched (Reach.build_frozen patch.Delta.p_frozen))

(* A lone method addition with already-interned types is the canonical
   live-edit: it must take the spliced path, not the rebuild fallback. *)
let prop_add_method_splices =
  QCheck2.Test.make ~name:"single add-method on an unenriched snapshot splices"
    ~count:40
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* classes = int_range 10 40 in
      return (seed, classes))
    (fun (seed, classes) ->
      let h = Apigen.generate { Apigen.default_params with classes; seed } in
      let frozen = freeze_cold h in
      let rng = Rng.create ~seed in
      let d = Rng.pick rng (real_decls h) in
      let m = fresh_meth rng h 1 in
      match Delta.apply ~hierarchy:h ~frozen [ Delta.Add_method (d.Decl.dname, m) ] with
      | Error _ -> false
      | Ok patch ->
          patch.Delta.p_mode = Delta.Spliced
          && patch.Delta.p_touched_count > 0
          && Delta.frozen_equal patch.Delta.p_frozen
               (freeze_cold patch.Delta.p_hierarchy))

(* ---------- japi round-trip at delta-file scale ---------- *)

let prop_delta_file_roundtrip =
  QCheck2.Test.make ~name:"japi printer/loader round-trips delta-sized files"
    ~count:60
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* classes = int_range 1 6 in
      return
        (Apigen.generate
           { Apigen.default_params with classes; seed; packages = 1 }))
    roundtrips

(* ---------- cache invalidation counters ---------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_clear_counts_dropped () =
  let c = Qcache.create ~capacity:8 () in
  List.iter (fun k -> Qcache.add c k (k * 10)) [ 1; 2; 3 ];
  Qcache.clear c;
  let st = Qcache.stats c in
  Alcotest.(check int) "dropped = entry count at clear" 3 st.Qcache.s_dropped;
  Alcotest.(check int) "one invalidation" 1 st.Qcache.s_invalidations;
  Alcotest.(check int) "no scoped pass" 0 st.Qcache.s_scoped;
  Alcotest.(check int) "empty after" 0 st.Qcache.s_entries;
  Qcache.clear c;
  Alcotest.(check int) "empty clear drops nothing" 3 (Qcache.stats c).Qcache.s_dropped

let test_refresh_counts_and_rekeys () =
  let c = Qcache.create ~capacity:8 () in
  List.iter (fun k -> Qcache.add c k (k * 10)) [ 1; 2; 3; 4 ];
  let removed =
    Qcache.refresh c (fun k -> if k mod 2 = 0 then Some (k + 100) else None)
  in
  Alcotest.(check int) "two entries removed" 2 removed;
  let st = Qcache.stats c in
  Alcotest.(check int) "dropped counts removals" 2 st.Qcache.s_dropped;
  Alcotest.(check int) "one scoped pass" 1 st.Qcache.s_scoped;
  Alcotest.(check int) "refresh is not an invalidation" 0 st.Qcache.s_invalidations;
  Alcotest.(check bool) "survivor rekeyed" true (Qcache.mem c 102);
  Alcotest.(check bool) "old key gone" false (Qcache.mem c 2);
  Alcotest.(check (list int)) "recency preserved, mru first" [ 104; 102 ]
    (Qcache.keys_mru_first c);
  Alcotest.(check (option int)) "value survives rekeying" (Some 40) (Qcache.find c 104)

let test_refresh_preserves_eviction_order () =
  let c = Qcache.create ~capacity:3 () in
  List.iter (fun k -> Qcache.add c k k) [ 1; 2; 3 ];
  ignore (Qcache.find c 1);
  (* recency now 1,3,2 — identity refresh must not disturb it *)
  ignore (Qcache.refresh c (fun k -> Some k));
  Qcache.add c 4 4;
  Alcotest.(check bool) "lru evicted" false (Qcache.mem c 2);
  Alcotest.(check bool) "mru kept" true (Qcache.mem c 1);
  Alcotest.(check bool) "middle kept" true (Qcache.mem c 3)

let test_stats_render_gated () =
  let c = Qcache.create ~capacity:4 () in
  Alcotest.(check bool) "silent before any reload" false
    (contains (Stats.cache_to_string (Qcache.stats c)) "dropped");
  Qcache.add c 1 1;
  Qcache.clear c;
  let s = Stats.cache_to_string (Qcache.stats c) in
  Alcotest.(check bool) "dropped rendered" true (contains s "1 dropped");
  Alcotest.(check bool) "scoped rendered alongside" true (contains s "0 scoped")

let () =
  Alcotest.run "reload"
    [
      ( "delta oracle",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_patched_equals_cold; prop_reach_patch_identity; prop_add_method_splices;
          ] );
      ( "japi round-trip",
        List.map QCheck_alcotest.to_alcotest [ prop_delta_file_roundtrip ] );
      ( "qcache counters",
        [
          Alcotest.test_case "clear counts dropped" `Quick test_clear_counts_dropped;
          Alcotest.test_case "refresh counts and rekeys" `Quick
            test_refresh_counts_and_rekeys;
          Alcotest.test_case "refresh preserves eviction order" `Quick
            test_refresh_preserves_eviction_order;
          Alcotest.test_case "stats render gated on counters" `Quick
            test_stats_render_gated;
        ] );
    ]
