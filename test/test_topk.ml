(* The best-first top-k search must be invisible in the answers: this suite
   unit-tests its two data structures (the binary heap and the shared-prefix
   path arena), then pins the headline contract — [strategy = BestFirst]
   returns byte-identical results to the exhaustive enumerate-and-sort
   oracle — over the bundled Eclipse graph (Table 1, mined typestate
   duplicates included), the layered synthetic workload, random Apigen
   worlds (qcheck), and the multi-source assist path, while materializing
   no more candidates than the oracle does. *)

module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Search = Prospector.Search
module Rank = Prospector.Rank
module Query = Prospector.Query
module Topk = Prospector.Topk
module Sig_graph = Prospector.Sig_graph
module Apigen = Corpusgen.Apigen
module Workload = Corpusgen.Workload
module Problems = Apidata.Problems

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let load = Japi.Loader.load_string

let node g name = Option.get (Graph.find_type_node g (Jtype.ref_of_string name))

(* The first outgoing edge of [u] that lands on the named type (the
   adjacency row also holds widen edges to supertypes). *)
let edge_to g u name =
  let want = Jtype.ref_of_string name in
  List.find
    (fun (e : Graph.edge) -> Jtype.equal (Graph.node_type g e.Graph.dst) want)
    (Graph.succs g u)

(* ---------- the heap ---------- *)

let test_heap_empty () =
  let hp = Topk.Heap.create () in
  check_int "empty length" 0 (Topk.Heap.length hp);
  check_int "empty min_prio" max_int (Topk.Heap.min_prio hp)

let test_heap_pops_sorted () =
  let hp = Topk.Heap.create () in
  (* deterministic pseudo-random priorities, duplicates included *)
  let r = ref 1234 in
  let next () =
    r := ((!r * 1103515245) + 12345) land 0x3FFFFFFF;
    !r mod 997
  in
  let pushed = List.init 500 (fun _ -> next ()) in
  List.iter (fun p -> Topk.Heap.add hp ~prio:p p) pushed;
  check_int "length after pushes" 500 (Topk.Heap.length hp);
  let popped = List.init 500 (fun _ -> Topk.Heap.pop hp) in
  check_bool "pops in nondecreasing priority order" true
    (popped = List.sort compare pushed);
  check_int "drained" 0 (Topk.Heap.length hp)

let test_heap_interleaved () =
  (* pops interleaved with pushes still always yield the current minimum *)
  let hp = Topk.Heap.create () in
  List.iter (fun p -> Topk.Heap.add hp ~prio:p p) [ 5; 1; 4 ];
  check_int "min of 5,1,4" 1 (Topk.Heap.pop hp);
  Topk.Heap.add hp ~prio:0 0;
  Topk.Heap.add hp ~prio:9 9;
  check_int "min after reinsert" 0 (Topk.Heap.pop hp);
  check_int "then" 4 (Topk.Heap.pop hp);
  check_int "then" 5 (Topk.Heap.pop hp);
  check_int "then" 9 (Topk.Heap.pop hp)

(* ---------- the arena ---------- *)

(* Linear chain A -> B -> C -> D, as in test_core_search. *)
let chain_model () =
  load
    {|
    package p;
    class A { B toB(); }
    class B { C toC(); }
    class C { D toD(); }
    class D { }
    |}

let test_arena_reconstructs_paths () =
  let h = chain_model () in
  let g = Sig_graph.build h in
  let a = node g "p.A" in
  let ea = edge_to g a "p.B" in
  let eb = edge_to g ea.Graph.dst "p.C" in
  let ec = edge_to g eb.Graph.dst "p.D" in
  let ar = Topk.Arena.create () in
  let r0 = Topk.Arena.add_root ar a in
  check_int "root node" a (Topk.Arena.node ar r0);
  check_int "root parent" (-1) (Topk.Arena.parent ar r0);
  check_bool "root path is empty" true
    (Topk.Arena.path ar r0 = { Search.source = a; edges = [] });
  let r1 = Topk.Arena.append ar ~parent:r0 ~ord:0 ea in
  let r2 = Topk.Arena.append ar ~parent:r1 ~ord:0 eb in
  let r3 = Topk.Arena.append ar ~parent:r2 ~ord:0 ec in
  (* a second branch sharing the r1 prefix: rows never get copied *)
  let s2 = Topk.Arena.append ar ~parent:r1 ~ord:1 eb in
  check_int "five rows for two sharing paths" 5 (Topk.Arena.size ar);
  let p = Topk.Arena.path ar r3 in
  check_bool "path source" true (p.Search.source = a);
  check_bool "path edges root-first" true (p.Search.edges = [ ea; eb; ec ]);
  check_bool "ords root-first" true (Topk.Arena.ords_of ar r3 = [| 0; 0; 0 |]);
  check_bool "branch ords" true (Topk.Arena.ords_of ar s2 = [| 0; 1 |]);
  check_int "branch parent" r1 (Topk.Arena.parent ar s2)

let test_arena_on_path () =
  let h = chain_model () in
  let g = Sig_graph.build h in
  let a = node g "p.A" in
  let ea = edge_to g a "p.B" in
  let eb = edge_to g ea.Graph.dst "p.C" in
  let ar = Topk.Arena.create () in
  let r0 = Topk.Arena.add_root ar a in
  let r1 = Topk.Arena.append ar ~parent:r0 ~ord:0 ea in
  let r2 = Topk.Arena.append ar ~parent:r1 ~ord:0 eb in
  check_bool "sees the source" true (Topk.Arena.on_path ar r2 a);
  check_bool "sees an interior node" true
    (Topk.Arena.on_path ar r2 ea.Graph.dst);
  check_bool "sees the head" true (Topk.Arena.on_path ar r2 eb.Graph.dst);
  check_bool "a prefix does not see later nodes" true
    (not (Topk.Arena.on_path ar r1 eb.Graph.dst))

(* ---------- strategy spellings ---------- *)

let test_strategy_strings () =
  check_bool "best-first parses" true
    (Query.strategy_of_string "best-first" = Ok Query.BestFirst);
  check_bool "exhaustive parses" true
    (Query.strategy_of_string "exhaustive" = Ok Query.Exhaustive);
  check_bool "to_string round-trips" true
    (List.for_all
       (fun s -> Query.strategy_of_string (Query.strategy_to_string s) = Ok s)
       [ Query.BestFirst; Query.Exhaustive ]);
  check_bool "unknown spelling rejected" true
    (match Query.strategy_of_string "bfs" with
    | Error _ -> true
    | Ok _ -> false)

(* ---------- byte-identical to the exhaustive oracle ---------- *)

let settings_at ~k strategy =
  { Query.default_settings with max_results = k; strategy }

let results_equal (a : Query.result list) (b : Query.result list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Query.result) (y : Query.result) ->
         Prospector.Jungloid.equal x.Query.jungloid y.Query.jungloid
         && Rank.compare_key x.Query.key y.Query.key = 0
         && x.Query.code = y.Query.code)
       a b

let test_bundled_equivalence () =
  (* the mined Eclipse graph: downcast edges, typestate duplicates, the
     full Table 1 workload at the default k *)
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  List.iter
    (fun (p : Problems.t) ->
      let q = Query.query p.Problems.tin p.Problems.tout in
      let ex =
        Query.run
          ~settings:(settings_at ~k:10 Query.Exhaustive)
          ~graph ~hierarchy q
      in
      let bf = Query.run ~graph ~hierarchy q (* default = BestFirst, k=10 *) in
      check_bool
        (Printf.sprintf "problem %d identical" p.Problems.id)
        true (results_equal ex bf))
    Problems.all

let test_layered_equivalence () =
  let h = Workload.layered_api ~classes:300 in
  let g = Sig_graph.build h in
  let frozen = Graph.freeze g in
  List.iter
    (fun q ->
      let ex =
        Query.run
          ~settings:(settings_at ~k:10 Query.Exhaustive)
          ~graph:g ~hierarchy:h q
      in
      let bf =
        Query.run
          ~settings:(settings_at ~k:10 Query.BestFirst)
          ~frozen ~graph:g ~hierarchy:h q
      in
      check_bool "layered: best-first over CSR = exhaustive over list" true
        (results_equal ex bf))
    (Workload.random_queries h g ~count:10 ~seed:11)

let test_exhaustion_below_k () =
  (* asking for far more results than exist must terminate, deliver the
     whole solution set, and not claim truncation *)
  let h = chain_model () in
  let g = Sig_graph.build h in
  let q = Query.query "p.A" "p.D" in
  let ex =
    Query.run
      ~settings:(settings_at ~k:10_000 Query.Exhaustive)
      ~graph:g ~hierarchy:h q
  in
  let bf, info =
    Query.run_info
      ~settings:(settings_at ~k:10_000 Query.BestFirst)
      ~graph:g ~hierarchy:h q
  in
  check_bool "everything delivered" true (results_equal ex bf);
  check_bool "at least the chain itself" true (List.length bf >= 1);
  check_bool "not truncated" false info.Query.truncated

let test_truncation_reported () =
  let h = Workload.layered_api ~classes:200 in
  let g = Sig_graph.build h in
  let qs = Workload.random_queries h g ~count:10 ~seed:3 in
  (* a query with more than one within-budget path *)
  let q =
    List.find
      (fun q ->
        let _, i =
          Query.run_info
            ~settings:(settings_at ~k:100 Query.Exhaustive)
            ~graph:g ~hierarchy:h q
        in
        i.Query.candidates > 1)
      qs
  in
  let tight strategy =
    { Query.default_settings with max_results = 100; strategy; limit = 1 }
  in
  let _, exi =
    Query.run_info ~settings:(tight Query.Exhaustive) ~graph:g ~hierarchy:h q
  in
  let _, bfi =
    Query.run_info ~settings:(tight Query.BestFirst) ~graph:g ~hierarchy:h q
  in
  check_bool "exhaustive reports truncation" true exi.Query.truncated;
  check_bool "best-first reports truncation" true bfi.Query.truncated

let test_multi_equivalence () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let vars =
    [
      ("ep", Jtype.ref_of_string "org.eclipse.ui.IEditorPart");
      ("page", Jtype.ref_of_string "org.eclipse.ui.IWorkbenchPage");
    ]
  in
  let tout = Jtype.ref_of_string "org.eclipse.ui.texteditor.IDocumentProvider" in
  let at strategy =
    Query.run_multi
      ~settings:{ Query.default_settings with strategy }
      ~graph ~hierarchy ~vars ~tout ()
  in
  let ex = at Query.Exhaustive and bf = at Query.BestFirst in
  check_int "multi: same count" (List.length ex) (List.length bf);
  List.iter2
    (fun (a : Query.multi_result) (b : Query.multi_result) ->
      check_bool "multi: same source var" true
        (a.Query.source_var = b.Query.source_var);
      check_bool "multi: same jungloid" true
        (Prospector.Jungloid.equal a.Query.result.Query.jungloid
           b.Query.result.Query.jungloid);
      check_bool "multi: same code" true
        (a.Query.result.Query.code = b.Query.result.Query.code))
    ex bf

(* ---------- usage-weighted ranking: the same differential harness ---------- *)

(* [Mined] must preserve the headline contract verbatim: BestFirst+Mined is
   byte-identical to Exhaustive+Mined (the oracle re-sorts the same
   paper-budget candidate set by the weighted key). The bundled corpus
   supplies a real model for the Eclipse graph; synthetic worlds get a
   deterministic pseudo-random non-negative model — the equivalence must
   hold for any such model, not just −log frequencies. *)

let mined_at ~k strategy =
  { Query.default_settings with max_results = k; strategy; ranking = Query.Mined }

(* Widen stays free, matching the Usage invariant the rank layer assumes. *)
let synthetic_cost ~seed e =
  if Prospector.Elem.is_widen e then 0
  else Hashtbl.hash (seed, e) mod (3 * Prospector.Elem.cost_scale)

let test_bundled_mined_equivalence () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let edge_cost = Mining.Usage.edge_cost (Apidata.Api.usage ()) in
  List.iter
    (fun (p : Problems.t) ->
      let q = Query.query p.Problems.tin p.Problems.tout in
      let ex =
        Query.run ~settings:(mined_at ~k:10 Query.Exhaustive) ~edge_cost ~graph
          ~hierarchy q
      in
      let bf =
        Query.run ~settings:(mined_at ~k:10 Query.BestFirst) ~edge_cost ~graph
          ~hierarchy q
      in
      check_bool
        (Printf.sprintf "problem %d identical under mined ranking" p.Problems.id)
        true (results_equal ex bf))
    Problems.all

let test_layered_mined_equivalence () =
  let h = Workload.layered_api ~classes:300 in
  let g = Sig_graph.build h in
  let edge_cost = synthetic_cost ~seed:42 in
  (* the snapshot must be frozen under the same model the rank layer uses *)
  let frozen = Graph.freeze ~wcost:edge_cost g in
  List.iter
    (fun q ->
      let ex =
        Query.run ~settings:(mined_at ~k:10 Query.Exhaustive) ~edge_cost
          ~graph:g ~hierarchy:h q
      in
      let bf =
        Query.run ~settings:(mined_at ~k:10 Query.BestFirst) ~edge_cost ~frozen
          ~graph:g ~hierarchy:h q
      in
      check_bool "layered mined: best-first over CSR = exhaustive over list" true
        (results_equal ex bf))
    (Workload.random_queries h g ~count:10 ~seed:11)

let test_multi_mined_equivalence () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let edge_cost = Mining.Usage.edge_cost (Apidata.Api.usage ()) in
  let vars =
    [
      ("ep", Jtype.ref_of_string "org.eclipse.ui.IEditorPart");
      ("page", Jtype.ref_of_string "org.eclipse.ui.IWorkbenchPage");
    ]
  in
  let tout = Jtype.ref_of_string "org.eclipse.ui.texteditor.IDocumentProvider" in
  let at strategy =
    Query.run_multi
      ~settings:{ Query.default_settings with strategy; ranking = Query.Mined }
      ~edge_cost ~graph ~hierarchy ~vars ~tout ()
  in
  let ex = at Query.Exhaustive and bf = at Query.BestFirst in
  check_int "mined multi: same count" (List.length ex) (List.length bf);
  List.iter2
    (fun (a : Query.multi_result) (b : Query.multi_result) ->
      check_bool "mined multi: same source var" true
        (a.Query.source_var = b.Query.source_var);
      check_bool "mined multi: same jungloid" true
        (Prospector.Jungloid.equal a.Query.result.Query.jungloid
           b.Query.result.Query.jungloid);
      check_bool "mined multi: same code" true
        (a.Query.result.Query.code = b.Query.result.Query.code))
    ex bf

(* ---------- configuration-fallback warnings ---------- *)

let test_fallback_warnings () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let q = Query.query "org.eclipse.ui.IEditorPart" "org.eclipse.core.resources.IFile" in
  (* healthy configuration: no warnings *)
  let _, info = Query.run_info ~graph ~hierarchy q in
  check_bool "default run reports no warnings" true (info.Query.warnings = []);
  (* a negative freevar charge voids the best-first certificate: the run
     must fall back to the exhaustive strategy AND say so (the fallback was
     silent before info.warnings existed) *)
  let ablation =
    {
      Query.default_settings with
      weights = { Rank.default_weights with Rank.freevar_cost = -1 };
    }
  in
  let rs_bf, info_bf = Query.run_info ~settings:ablation ~graph ~hierarchy q in
  check_int "negative freevar_cost: one warning" 1
    (List.length info_bf.Query.warnings);
  check_bool "warning names the exhaustive fallback" true
    (let w = List.hd info_bf.Query.warnings in
     let contains sub =
       let n = String.length sub and m = String.length w in
       let rec go i = i + n <= m && (String.sub w i n = sub || go (i + 1)) in
       go 0
     in
     contains "freevar_cost" && contains "exhaustive");
  (* the fallback serves the exhaustive answers, not a broken best-first *)
  let rs_ex =
    Query.run
      ~settings:{ ablation with strategy = Query.Exhaustive }
      ~graph ~hierarchy q
  in
  check_bool "fallback answers = exhaustive answers" true
    (results_equal rs_ex rs_bf);
  (* Mined without a loaded model reverts to Paper, with its own warning *)
  let rs_m, info_m =
    Query.run_info
      ~settings:{ Query.default_settings with ranking = Query.Mined }
      ~graph ~hierarchy q
  in
  check_int "mined without model: one warning" 1 (List.length info_m.Query.warnings);
  check_bool "warning names the paper fallback" true
    (let w = List.hd info_m.Query.warnings in
     let n = String.length "paper ranking" and m = String.length w in
     let rec go i =
       i + n <= m && (String.sub w i n = "paper ranking" || go (i + 1))
     in
     go 0);
  let rs_p = Query.run ~graph ~hierarchy q in
  check_bool "modelless mined answers = paper answers" true
    (results_equal rs_p rs_m)

(* ---------- mined-protocol checking: the same differential harness ---------- *)

(* The settings contract: [Warn] leaves the result set byte-identical to
   [Off] (violations only surface as warnings), and [Filter] drops
   violating candidates after enumeration — never inside the search
   priority — so BestFirst and Exhaustive stay byte-identical under every
   mode. The real mined model covers the bundled graph; a synthetic checker
   exercises arbitrary drop sets. *)

let bundled_check =
  lazy
    (let model = Apidata.Api.proto () in
     fun j -> Analysis.Protolint.violations model j)

(* Deterministic, model-free: drops roughly a third of all candidates. *)
let synthetic_check j =
  if Hashtbl.hash (Prospector.Jungloid.to_expression j) mod 3 = 0 then
    [ "synthetic violation" ]
  else []

let proto_at ~k ~protocol strategy =
  { Query.default_settings with max_results = k; strategy; protocol }

let test_bundled_protocol_equivalence () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let protocol_check = Lazy.force bundled_check in
  List.iter
    (fun (p : Problems.t) ->
      let q = Query.query p.Problems.tin p.Problems.tout in
      let off = Query.run ~graph ~hierarchy q in
      List.iter
        (fun protocol ->
          let at strategy =
            Query.run
              ~settings:(proto_at ~k:10 ~protocol strategy)
              ~protocol_check ~graph ~hierarchy q
          in
          let ex = at Query.Exhaustive and bf = at Query.BestFirst in
          check_bool
            (Printf.sprintf "problem %d identical under %s" p.Problems.id
               (Query.protocol_to_string protocol))
            true (results_equal ex bf);
          if protocol = Query.Warn then
            check_bool
              (Printf.sprintf "problem %d: warn leaves results untouched"
                 p.Problems.id)
              true (results_equal off bf))
        [ Query.Warn; Query.Filter ])
    Problems.all

let test_synthetic_filter_equivalence () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  List.iter
    (fun (p : Problems.t) ->
      let q = Query.query p.Problems.tin p.Problems.tout in
      let at strategy =
        Query.run
          ~settings:(proto_at ~k:10 ~protocol:Query.Filter strategy)
          ~protocol_check:synthetic_check ~graph ~hierarchy q
      in
      let ex = at Query.Exhaustive and bf = at Query.BestFirst in
      check_bool
        (Printf.sprintf "problem %d identical under synthetic filter"
           p.Problems.id)
        true (results_equal ex bf);
      (* the filter really ran: every survivor passes the predicate *)
      check_bool "no violating survivor" true
        (List.for_all
           (fun (r : Query.result) -> synthetic_check r.Query.jungloid = [])
           bf))
    Problems.all

let test_protocol_fallback_warning () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let q = Query.query "org.eclipse.ui.IEditorPart" "org.eclipse.core.resources.IFile" in
  let off = Query.run ~graph ~hierarchy q in
  (* Warn/Filter without a loaded checker: revert to Off, say so once *)
  List.iter
    (fun protocol ->
      let rs, info =
        Query.run_info
          ~settings:{ Query.default_settings with protocol }
          ~graph ~hierarchy q
      in
      check_int
        (Printf.sprintf "%s without checker: one warning"
           (Query.protocol_to_string protocol))
        1
        (List.length info.Query.warnings);
      check_bool "warning names the protocol fallback" true
        (let w = List.hd info.Query.warnings in
         let n = String.length "protocol" and m = String.length w in
         let rec go i = (i + n <= m) && (String.sub w i n = "protocol" || go (i + 1)) in
         go 0);
      check_bool "checkerless answers = off answers" true (results_equal off rs))
    [ Query.Warn; Query.Filter ];
  (* and with a checker, Warn reports violations without touching results *)
  let rs_w, info_w =
    Query.run_info
      ~settings:{ Query.default_settings with protocol = Query.Warn }
      ~protocol_check:(fun _ -> [ "always deviant" ])
      ~graph ~hierarchy q
  in
  check_bool "warn with checker keeps results" true (results_equal off rs_w);
  check_int "one violation warning per result" (List.length off)
    (List.length info_w.Query.warnings)

(* ---------- qcheck: random Apigen worlds ---------- *)

let world_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 20 80 in
    return
      (let params =
         {
           Corpusgen.Apigen.default_params with
           classes;
           seed;
           methods_per_class = 4;
         }
       in
       let h = Corpusgen.Apigen.generate params in
       (h, Sig_graph.build h)))

let prop_best_first_equals_exhaustive =
  QCheck2.Test.make
    ~name:"BestFirst = first k of exhaustive Rank.sort (random APIs)"
    ~count:25 world_gen (fun (h, g) ->
      let frozen = Graph.freeze g in
      List.for_all
        (fun q ->
          List.for_all
            (fun k ->
              let ex, exi =
                Query.run_info
                  ~settings:(settings_at ~k Query.Exhaustive)
                  ~graph:g ~hierarchy:h q
              in
              let bf, bfi =
                Query.run_info
                  ~settings:(settings_at ~k Query.BestFirst)
                  ~graph:g ~hierarchy:h q
              in
              let bz =
                Query.run
                  ~settings:(settings_at ~k Query.BestFirst)
                  ~frozen ~graph:g ~hierarchy:h q
              in
              (* an exhaustive oracle that hit the path limit certifies
                 nothing; skip (never happens at these sizes in practice) *)
              exi.Query.truncated
              || results_equal ex bf
                 && results_equal ex bz
                 && bfi.Query.candidates <= exi.Query.candidates)
            [ 1; 3; 10 ])
        (Corpusgen.Workload.random_queries h g ~count:3 ~seed:7))

let prop_mined_equals_exhaustive =
  QCheck2.Test.make
    ~name:"BestFirst+Mined = Exhaustive+Mined (random APIs, random models)"
    ~count:25 world_gen (fun (h, g) ->
      let edge_cost = synthetic_cost ~seed:7 in
      let frozen = Graph.freeze ~wcost:edge_cost g in
      List.for_all
        (fun q ->
          List.for_all
            (fun k ->
              let ex, exi =
                Query.run_info
                  ~settings:(mined_at ~k Query.Exhaustive)
                  ~edge_cost ~graph:g ~hierarchy:h q
              in
              let bf =
                Query.run
                  ~settings:(mined_at ~k Query.BestFirst)
                  ~edge_cost ~graph:g ~hierarchy:h q
              in
              let bz =
                Query.run
                  ~settings:(mined_at ~k Query.BestFirst)
                  ~edge_cost ~frozen ~graph:g ~hierarchy:h q
              in
              exi.Query.truncated || (results_equal ex bf && results_equal ex bz))
            [ 1; 3; 10 ])
        (Corpusgen.Workload.random_queries h g ~count:3 ~seed:7))

let prop_estimated_freevars_equal =
  (* the freevar_cost_of estimation path reweighs the priority's charge
     component; the equivalence must survive it *)
  QCheck2.Test.make
    ~name:"BestFirst = exhaustive under estimate_freevars" ~count:15 world_gen
    (fun (h, g) ->
      let at strategy =
        {
          Query.default_settings with
          strategy;
          estimate_freevars = true;
          max_results = 10;
        }
      in
      List.for_all
        (fun q ->
          let ex = Query.run ~settings:(at Query.Exhaustive) ~graph:g ~hierarchy:h q in
          let bf = Query.run ~settings:(at Query.BestFirst) ~graph:g ~hierarchy:h q in
          results_equal ex bf)
        (Corpusgen.Workload.random_queries h g ~count:3 ~seed:13))

let () =
  Alcotest.run "topk"
    [
      ( "heap",
        [
          Alcotest.test_case "empty heap" `Quick test_heap_empty;
          Alcotest.test_case "pops sorted" `Quick test_heap_pops_sorted;
          Alcotest.test_case "interleaved push/pop" `Quick test_heap_interleaved;
        ] );
      ( "arena",
        [
          Alcotest.test_case "reconstructs shared-prefix paths" `Quick
            test_arena_reconstructs_paths;
          Alcotest.test_case "on_path walks the parent chain" `Quick
            test_arena_on_path;
        ] );
      ( "strategy",
        [ Alcotest.test_case "spellings round-trip" `Quick test_strategy_strings ] );
      ( "equivalence",
        [
          Alcotest.test_case "bundled Eclipse graph, Table 1" `Quick
            test_bundled_equivalence;
          Alcotest.test_case "layered synthetic, CSR view" `Quick
            test_layered_equivalence;
          Alcotest.test_case "exhaustion below k" `Quick test_exhaustion_below_k;
          Alcotest.test_case "truncation reported by both strategies" `Quick
            test_truncation_reported;
          Alcotest.test_case "multi-source assist path" `Quick
            test_multi_equivalence;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_best_first_equals_exhaustive; prop_estimated_freevars_equal ] );
      ( "mined",
        [
          Alcotest.test_case "bundled Eclipse graph, Table 1, usage model"
            `Quick test_bundled_mined_equivalence;
          Alcotest.test_case "layered synthetic, CSR view, synthetic model"
            `Quick test_layered_mined_equivalence;
          Alcotest.test_case "multi-source assist path, usage model" `Quick
            test_multi_mined_equivalence;
          Alcotest.test_case "configuration fallbacks warn" `Quick
            test_fallback_warnings;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_mined_equals_exhaustive ] );
      ( "protocol",
        [
          Alcotest.test_case "bundled Eclipse graph, Table 1, mined model"
            `Quick test_bundled_protocol_equivalence;
          Alcotest.test_case "synthetic filter drops, both strategies agree"
            `Quick test_synthetic_filter_equivalence;
          Alcotest.test_case "checkerless fallback warns; warn keeps results"
            `Quick test_protocol_fallback_warning;
        ] );
    ]
