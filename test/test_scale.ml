(* Million-method-scale plumbing, shrunk to test size: the package-cone
   shard router must be invisible in batch answers (qcheck, over locality
   worlds where the planner actually engages), the v2 frozen snapshot must
   round-trip through disk bit for bit with and without mmap, a damaged
   cache file must surface as a typed error rather than a crash, and the
   mega generator must be a pure function of its seed. *)

module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Query = Prospector.Query
module Search = Prospector.Search
module Reach = Prospector.Reach
module Shard = Prospector.Shard
module Serialize = Prospector.Serialize

let check_bool = Alcotest.(check bool)

let mega_world methods =
  let h = Corpusgen.Workload.mega_api ~methods in
  (h, Prospector.Sig_graph.build h)

let results_equal (a : Query.result list) (b : Query.result list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Query.result) (y : Query.result) ->
         Prospector.Jungloid.equal x.Query.jungloid y.Query.jungloid
         && Prospector.Rank.compare_key x.Query.key y.Query.key = 0
         && x.Query.code = y.Query.code)
       a b

let with_temp f =
  let path = Filename.temp_file "prospector_test" ".froz" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ---------- qcheck: sharded batches and disk round-trips ---------- *)

let world_gen ~locality =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 60 160 in
    return
      (let params =
         {
           Corpusgen.Apigen.default_params with
           classes;
           packages = 12;
           locality;
           seed;
         }
       in
       let h = Corpusgen.Apigen.generate params in
       (h, Prospector.Sig_graph.build h)))

let prop_sharded_batch_oracle =
  QCheck2.Test.make ~name:"sharded run_batch = sequential whole-graph oracle"
    ~count:15 (world_gen ~locality:0.9) (fun (h, g) ->
      let frozen = Graph.freeze g in
      let qs =
        Corpusgen.Workload.random_queries h g ~count:6 ~seed:5
        @ Corpusgen.Workload.random_misses g ~count:2 ~seed:6
      in
      let engine = Query.engine_of_frozen ~frozen ~hierarchy:h () in
      let batch = Query.run_batch engine qs in
      List.length batch = List.length qs
      && List.for_all2
           (fun (q', rs) q ->
             q' = q && results_equal rs (Query.run ~frozen ~hierarchy:h q))
           batch qs)

let prop_frozen_disk_roundtrip =
  QCheck2.Test.make ~name:"save_frozen/load_frozen = freeze (mmap and read)"
    ~count:20 (world_gen ~locality:0.0) (fun (h, g) ->
      let frozen = Graph.freeze g in
      with_temp (fun path ->
          ignore (Serialize.save_frozen frozen path : int);
          let lanes_equal fz =
            let n = frozen.Graph.f_nodes and m = frozen.Graph.f_edges in
            let ok = ref (fz.Graph.f_nodes = n && fz.Graph.f_edges = m) in
            if !ok then begin
              for i = 0 to n do
                if
                  fz.Graph.f_fwd_off.{i} <> frozen.Graph.f_fwd_off.{i}
                  || fz.Graph.f_bwd_off.{i} <> frozen.Graph.f_bwd_off.{i}
                then ok := false
              done;
              for k = 0 to m - 1 do
                if
                  fz.Graph.f_fwd_dst.{k} <> frozen.Graph.f_fwd_dst.{k}
                  || fz.Graph.f_fwd_cost.{k} <> frozen.Graph.f_fwd_cost.{k}
                  || fz.Graph.f_bwd_src.{k} <> frozen.Graph.f_bwd_src.{k}
                  || fz.Graph.f_bwd_cost.{k} <> frozen.Graph.f_bwd_cost.{k}
                then ok := false
              done
            end;
            !ok
          in
          let check fz =
            fz.Graph.f_generation = frozen.Graph.f_generation
            && lanes_equal fz
            && List.for_all
                 (fun q ->
                   results_equal
                     (Query.run ~frozen:fz ~hierarchy:h q)
                     (Query.run ~frozen ~hierarchy:h q))
                 (Corpusgen.Workload.random_queries h g ~count:3 ~seed:9)
          in
          let load mmap =
            match Serialize.load_frozen ~mmap path with
            | Ok fz -> fz
            | Error e ->
                QCheck2.Test.fail_reportf "load_frozen: %s"
                  (Serialize.error_message e)
          in
          check (load true) && check (load false)))

(* ---------- typed errors for damaged cache files ---------- *)

let small_world () =
  let h =
    Corpusgen.Apigen.generate
      { Corpusgen.Apigen.default_params with classes = 60 }
  in
  (h, Prospector.Sig_graph.build h)

let test_damaged_files () =
  let _, g = small_world () in
  let frozen = Graph.freeze g in
  with_temp (fun path ->
      ignore (Serialize.save_frozen frozen path : int);
      let full = In_channel.with_open_bin path In_channel.input_all in
      let rewrite s =
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc s)
      in
      rewrite (String.sub full 0 (String.length full / 2));
      (match Serialize.load_frozen path with
      | Error (Serialize.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "truncated v2 file loaded"
      | Error e ->
          Alcotest.failf "truncated: expected Corrupt, got %s"
            (Serialize.error_message e));
      rewrite (String.sub full 0 20);
      (match Serialize.load_frozen path with
      | Error (Serialize.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "header-only v2 file loaded"
      | Error e ->
          Alcotest.failf "header-only: expected Corrupt, got %s"
            (Serialize.error_message e));
      rewrite "definitely not a prospector cache file";
      (match Serialize.load_frozen path with
      | Error (Serialize.Bad_magic _) -> ()
      | _ -> Alcotest.fail "foreign file was not Bad_magic");
      (* the two formats reject each other by magic, which is what lets the
         server probe v2 first and fall back to a v1 graph file *)
      ignore (Serialize.save g path : int);
      (match Serialize.load_frozen path with
      | Error (Serialize.Bad_magic _) -> ()
      | _ -> Alcotest.fail "v1 graph file was not Bad_magic to the v2 loader");
      ignore (Serialize.save_frozen frozen path : int);
      match Serialize.load_result path with
      | Error (Serialize.Bad_magic _) -> ()
      | _ -> Alcotest.fail "v2 file was not Bad_magic to the v1 loader")

(* ---------- shard plan invariants ---------- *)

let test_shards_engage () =
  let h, g = mega_world 4000 in
  let frozen = Graph.freeze g in
  let reach = Reach.build_frozen frozen in
  match Shard.plan frozen reach with
  | None -> Alcotest.fail "planner declined a locality mega world"
  | Some sh ->
      check_bool "more than one shard" true (Shard.shard_count sh > 1);
      let n = Graph.frozen_node_count frozen in
      for s = 0 to Shard.shard_count sh - 1 do
        match Shard.sub sh s with
        | None -> ()
        | Some sub ->
            let pmap = Shard.to_parent sh s in
            check_bool "sub node count matches its parent map" true
              (Graph.frozen_node_count sub = Array.length pmap);
            check_bool "sub is a strict subgraph" true
              (Graph.frozen_node_count sub < n);
            check_bool "parent ids are valid and ascending" true
              (Array.for_all (fun u -> u >= 0 && u < n) pmap
              &&
              let asc = ref true in
              for i = 1 to Array.length pmap - 1 do
                if pmap.(i - 1) >= pmap.(i) then asc := false
              done;
              !asc)
      done;
      (* routing: every type node lands either in no shard (miss or hub) or
         in one whose sub-snapshot the engine can substitute *)
      List.iter
        (fun (_, node) ->
          match Shard.route sh ~target:node with
          | None -> ()
          | Some s ->
              check_bool "routed shard exists" true
                (s >= 0 && s < Shard.shard_count sh))
        (Graph.real_nodes g);
      ignore h

(* ---------- CSR kernels: scratch reuse and cone pruning ---------- *)

let test_kernel_scratch_and_cone () =
  let _, g = mega_world 3000 in
  let frozen = Graph.freeze g in
  let reach = Reach.build_frozen frozen in
  let n = Graph.frozen_node_count frozen in
  let target =
    let rec pick = function
      | [] -> Alcotest.fail "no target with a cone"
      | (_, node) :: rest ->
          if Reach.cone reach ~target:node <> None then node else pick rest
    in
    pick (Graph.real_nodes g)
  in
  let base =
    Search.Dist.snapshot ~n (Search.Csr.distances_to frozen ~target)
  in
  let scratch = Search.Scratch.create () in
  let reused =
    Search.Scratch.with_frame scratch (fun () ->
        Search.Dist.snapshot ~n
          (Search.Csr.distances_to ~scratch frozen ~target))
  in
  check_bool "pooled scratch = fresh lanes" true (base = reused);
  (* run the frame twice more so epoch stamping actually has stale lanes *)
  let reused2 =
    Search.Scratch.with_frame scratch (fun () ->
        ignore
          (Search.Csr.distances_from ~scratch frozen ~sources:[ target ]
            : Search.Dist.t);
        Search.Dist.snapshot ~n
          (Search.Csr.distances_to ~scratch frozen ~target))
  in
  check_bool "stale pooled lanes are invisible" true (base = reused2);
  match Reach.cone reach ~target with
  | None -> ()
  | Some (cone, _) ->
      let pruned =
        Search.Dist.snapshot ~n
          (Search.Csr.distances_to ~cone frozen ~target)
      in
      check_bool "cone-pruned distances = unpruned" true (base = pruned)

(* ---------- mega generator determinism ---------- *)

let sorted_decls h = List.sort compare (Javamodel.Hierarchy.decls h)

let test_mega_deterministic () =
  let d1 = sorted_decls (Corpusgen.Apigen.mega ~methods:2_000 ()) in
  let d2 = sorted_decls (Corpusgen.Apigen.mega ~methods:2_000 ()) in
  check_bool "same seed, same world" true
    (List.equal Javamodel.Decl.equal d1 d2);
  let d3 = sorted_decls (Corpusgen.Apigen.mega ~seed:7 ~methods:2_000 ()) in
  check_bool "different seed, different world" true
    (not (List.equal Javamodel.Decl.equal d1 d3));
  let count =
    List.fold_left
      (fun acc (d : Javamodel.Decl.t) -> acc + List.length d.methods)
      0 d1
  in
  check_bool "method budget within 25%" true (abs (count - 2_000) < 500)

let () =
  Alcotest.run "scale"
    [
      ( "identity",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sharded_batch_oracle; prop_frozen_disk_roundtrip ] );
      ( "serialize",
        [ Alcotest.test_case "damaged files are typed errors" `Quick
            test_damaged_files ] );
      ( "shard",
        [ Alcotest.test_case "plan engages and stays consistent" `Quick
            test_shards_engage ] );
      ( "kernels",
        [ Alcotest.test_case "scratch reuse and cone pruning" `Quick
            test_kernel_scratch_and_cone ] );
      ( "mega",
        [ Alcotest.test_case "deterministic in the seed" `Quick
            test_mega_deterministic ] );
    ]
