(* The mined usage model ([Mining.Usage]): counting semantics on hand-built
   examples, then the properties the weighted search relies on, over random
   Apigen worlds — every cost is a finite non-negative integer bounded by
   the smoothing floor, unseen elems cost exactly the floor (one paper
   unit), frequency is rewarded monotonically, and the weighted Dijkstra
   distance the best-first priority adds is a true lower bound on the mined
   cost of every solution actually returned (the admissibility that makes
   BestFirst+Mined certify the same answers as the exhaustive oracle). *)

module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Elem = Prospector.Elem
module Search = Prospector.Search
module Query = Prospector.Query
module Sig_graph = Prospector.Sig_graph
module Usage = Mining.Usage
module Extract = Mining.Extract
module Apigen = Corpusgen.Apigen
module Workload = Corpusgen.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- fixtures ---------- *)

let chain_model () =
  Japi.Loader.load_string
    {|
    package p;
    class A { B toB(); }
    class B { C toC(); }
    class C { D toD(); }
    class D { }
    |}

(* The non-widening elems of a graph, in a deterministic order. *)
let call_elems g =
  let acc = ref [] in
  Graph.iter_edges g (fun e ->
      if not (Elem.is_widen e.Graph.elem) then acc := e.Graph.elem :: !acc);
  List.sort_uniq Elem.compare !acc

let example ?(origin = "t:cast-0") input elems = { Extract.input; elems; origin }

(* ---------- counting semantics ---------- *)

let test_empty_model () =
  check_int "total" 0 (Usage.total Usage.empty);
  check_int "distinct" 0 (Usage.distinct Usage.empty);
  check_int "floor of the empty model" 0 (Usage.floor_cost Usage.empty);
  let g = Sig_graph.build (chain_model ()) in
  List.iter
    (fun e -> check_int "empty model costs nothing" 0 (Usage.edge_cost Usage.empty e))
    (call_elems g)

let test_counts_and_pairs () =
  let h = chain_model () in
  let g = Sig_graph.build h in
  match call_elems g with
  | (a :: b :: c :: _ : Elem.t list) ->
      let widen =
        Elem.Widen
          {
            from_ = Jtype.ref_of_string "p.A";
            to_ = Jtype.ref_of_string "p.A";
          }
      in
      let input = Jtype.ref_of_string "p.A" in
      let m =
        Usage.of_examples
          [
            example input [ a; b; c ];
            example input [ a; widen; b ];
            (* widen is invisible to the counts *)
            example input [ a ];
          ]
      in
      check_int "a counted thrice" 3 (Usage.count m a);
      check_int "b counted twice" 2 (Usage.count m b);
      check_int "c counted once" 1 (Usage.count m c);
      check_int "widen never counted" 0 (Usage.count m widen);
      check_int "total sums the calls" 6 (Usage.total m);
      check_int "three distinct" 3 (Usage.distinct m);
      (* pairs skip widens: a·widen·b still co-occurs as (a, b) *)
      check_int "pair (a,b) twice" 2 (Usage.pair_count m a b);
      check_int "pair (b,c) once" 1 (Usage.pair_count m b c);
      check_int "pair (a,c) never adjacent" 0 (Usage.pair_count m a c);
      (* the cost order rewards frequency; unseen sits at the floor *)
      check_int "floor is one paper unit" Elem.cost_scale (Usage.floor_cost m);
      check_bool "more frequent is cheaper" true
        (Usage.edge_cost m a < Usage.edge_cost m b
        && Usage.edge_cost m b < Usage.edge_cost m c);
      check_bool "seen beats the floor" true
        (Usage.edge_cost m c < Usage.floor_cost m);
      check_int "widen always free" 0 (Usage.edge_cost m widen)
  | _ -> Alcotest.fail "chain model should have at least three call elems"

(* ---------- qcheck: random worlds ---------- *)

let world_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 20 60 in
    return
      (let params =
         {
           Apigen.default_params with
           classes;
           seed;
           methods_per_class = 4;
         }
       in
       let h = Apigen.generate params in
       (h, Sig_graph.build h)))

(* A random sub-multiset of the world's elems, shaped into examples. *)
let model_gen =
  QCheck2.Gen.(
    let* h, g = world_gen in
    let elems = Array.of_list (call_elems g) in
    let* picks =
      list_size (int_range 0 60) (int_range 0 (max 0 (Array.length elems - 1)))
    in
    let examples =
      List.mapi
        (fun i k ->
          let e = elems.(k) in
          example ~origin:(Printf.sprintf "gen:cast-%d" i) (Elem.input_type e)
            [ e ])
        picks
    in
    return (h, g, Usage.of_examples examples, Array.to_list elems, picks = []))

let prop_costs_bounded =
  QCheck2.Test.make
    ~name:"0 <= cost <= floor = cost_scale for every elem (random worlds)"
    ~count:50 model_gen (fun (_, _, m, elems, empty) ->
      let floor = Usage.floor_cost m in
      (if empty then floor = 0 else floor = Elem.cost_scale)
      && List.for_all
           (fun e ->
             let c = Usage.edge_cost m e in
             0 <= c && c <= floor)
           elems)

let prop_unseen_at_floor =
  QCheck2.Test.make
    ~name:"unseen elems cost exactly the smoothing floor" ~count:50 model_gen
    (fun (_, _, m, elems, _) ->
      List.for_all
        (fun e ->
          Usage.count m e > 0 || Usage.edge_cost m e = Usage.floor_cost m)
        elems)

let prop_frequency_monotone =
  QCheck2.Test.make
    ~name:"higher count never costs more" ~count:50 model_gen
    (fun (_, _, m, elems, _) ->
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Usage.count m a < Usage.count m b
              || Usage.edge_cost m a <= Usage.edge_cost m b)
            elems)
        elems)

(* ---------- qcheck: the best-first priority is admissible ---------- *)

let prop_weighted_distance_is_lower_bound =
  (* wdist_to(src) enters every best-first priority as the estimate of the
     remaining mined cost; it must never exceed the mined cost of any
     solution the search certifies, or the heap could retire a batch while
     a cheaper completion is still pending. *)
  QCheck2.Test.make
    ~name:"weighted Dijkstra distance <= mined cost of every returned solution"
    ~count:25 model_gen (fun (h, g, m, _, _) ->
      let edge_cost = Usage.edge_cost m in
      let settings =
        { Query.default_settings with ranking = Query.Mined; max_results = 10 }
      in
      List.for_all
        (fun (q : Query.t) ->
          match Graph.find_type_node g q.Query.tin with
          | None -> true
          | Some src ->
              let target =
                Option.get (Graph.find_type_node g q.Query.tout)
              in
              let wdist =
                Search.weighted_distances_to g ~target ~cost:edge_cost
              in
              Query.run ~settings ~edge_cost ~graph:g ~hierarchy:h q
              |> List.for_all (fun (r : Query.result) ->
                     let mined =
                       List.fold_left
                         (fun acc e -> acc + edge_cost e)
                         0 r.Query.jungloid.Prospector.Jungloid.elems
                     in
                     wdist.(src) <= mined))
        (Workload.random_queries h g ~count:3 ~seed:5))

let () =
  Alcotest.run "usage"
    [
      ( "counting",
        [
          Alcotest.test_case "empty model" `Quick test_empty_model;
          Alcotest.test_case "counts, pairs, cost order" `Quick
            test_counts_and_pairs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_costs_bounded;
            prop_unseen_at_floor;
            prop_frequency_monotone;
            prop_weighted_distance_is_lower_bound;
          ] );
    ]
