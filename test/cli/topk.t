--strategy is validated like --jobs: an unknown spelling gets a one-line
error and exit 1, never an exception trace.

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry --strategy bogus
  error: unknown strategy "bogus" (expected "best-first" or "exhaustive")
  [1]

--top is an alias for --max-results: the k of the best-first top-k search.

  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 3
  #1  λx. AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom(x), false) : IFile -> ASTNode
        ICompilationUnit compilationUnit = JavaCore.createCompilationUnitFrom(file);
        CompilationUnit compilationUnit2 = AST.parseCompilationUnit(compilationUnit, false);
  #2  λx. AST.parseCompilationUnit(String.valueOf(x).toCharArray()) : IFile -> ASTNode
        String string = String.valueOf(file);
        char[] chars = string.toCharArray();
        CompilationUnit compilationUnit = AST.parseCompilationUnit(chars);
  #3  λx. AST.parseCompilationUnit(x.getCharset().toCharArray()) : IFile -> ASTNode
        String string = file.getCharset();
        char[] chars = string.toCharArray();
        CompilationUnit compilationUnit = AST.parseCompilationUnit(chars);

The strategies are byte-identical — the default best-first search returns
exactly what the exhaustive oracle returns, on every subcommand:

  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 > bf.out
  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 --strategy exhaustive > ex.out
  $ cmp bf.out ex.out

  $ ../../bin/prospector_cli.exe assist org.eclipse.ui.IEditorInput -v ep:org.eclipse.ui.IEditorPart -n 3 > bf.out
  $ ../../bin/prospector_cli.exe assist org.eclipse.ui.IEditorInput -v ep:org.eclipse.ui.IEditorPart -n 3 --strategy exhaustive > ex.out
  $ cmp bf.out ex.out

  $ cat > queries.txt <<'EOF'
  > java.io.InputStream java.io.BufferedReader
  > void org.eclipse.ui.texteditor.DocumentProviderRegistry
  > EOF
  $ ../../bin/prospector_cli.exe batch queries.txt -n 2 > bf.out
  $ ../../bin/prospector_cli.exe batch queries.txt -n 2 --strategy exhaustive > ex.out
  $ cmp bf.out ex.out

Spelling out the default is also accepted:

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 1 --strategy best-first
  #1  λ(). DocumentProviderRegistry.getDefault() : void -> DocumentProviderRegistry
        DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();
