The bundled model and corpus are lint-clean (exit 0):

  $ ../../bin/prospector_cli.exe lint
  0 errors, 0 warnings, 0 infos

Machine-readable report, API pass only:

  $ ../../bin/prospector_cli.exe lint --pass api --json
  {"diagnostics": [], "errors": 0, "warnings": 0, "infos": 0}

Verifying the solutions of a query (the Section 1 example):

  $ ../../bin/prospector_cli.exe lint --pass query -q "org.eclipse.core.resources.IFile,org.eclipse.jdt.core.dom.ASTNode"
  0 errors, 0 warnings, 0 infos

A broken corpus: findings are printed with positions and the exit code is 1:

  $ cat > api.japi <<'JAPI'
  > package p;
  > class A { A id(); }
  > class B extends A { }
  > class D { }
  > JAPI
  $ cat > bad.java <<'JAVA'
  > package c;
  > class K {
  >   D m(A p) { D d = (D) p; return d; }
  >   A n() { A a; return a.id(); }
  > }
  > JAVA
  $ ../../bin/prospector_cli.exe lint --api api.japi --corpus bad.java
  bad.java:3:20: error[C005]: cast to p.D, unrelated to the static type p.A
  bad.java:4:23: error[C001]: 'a' is used but never assigned in c.K.n/0
  2 errors, 0 warnings, 0 infos
  [1]

The same report as JSON:

  $ ../../bin/prospector_cli.exe lint --api api.japi --corpus bad.java --json
  {"diagnostics": [{"severity": "error", "code": "C005", "file": "bad.java", "line": 3, "col": 20, "message": "cast to p.D, unrelated to the static type p.A"}, {"severity": "error", "code": "C001", "file": "bad.java", "line": 4, "col": 23, "message": "'a' is used but never assigned in c.K.n/0"}], "errors": 2, "warnings": 0, "infos": 0}
  [1]

Warnings alone exit 0, unless --strict promotes them:

  $ cat > warn.java <<'JAVA'
  > package c;
  > class K {
  >   A m(A p) { A unused = p.id(); return p.id(); }
  > }
  > JAVA
  $ ../../bin/prospector_cli.exe lint --api api.japi --corpus warn.java
  warn.java:3:25: warning[C004]: local 'unused' is never used
  0 errors, 1 warning, 0 infos
  $ ../../bin/prospector_cli.exe lint --api api.japi --corpus warn.java --strict
  warn.java:3:25: warning[C004]: local 'unused' is never used
  0 errors, 1 warning, 0 infos
  [1]

Inputs that fail to load exit 2:

  $ cat > broken.japi <<'JAPI'
  > package p
  > classs Oops {
  > JAPI
  $ ../../bin/prospector_cli.exe lint --api broken.japi
  error: broken.japi:2:1: expected ';' but found identifier 'classs'
  [2]

The proto pass checks corpus clients against the mined call-order automata.
The bundled corpus is self-clean by construction:

  $ ../../bin/prospector_cli.exe lint --pass proto
  0 errors, 0 warnings, 0 infos

A client that probes hasMoreElements but never consumes violates the mined
Enumeration protocol (checked against the bundled model):

  $ cat > deviant.java <<'JAVA'
  > package c;
  > class Probe {
  >   void probe(ZipFile zip) {
  >     Enumeration en = zip.entries();
  >     en.hasMoreElements();
  >   }
  > }
  > JAVA
  $ ../../bin/prospector_cli.exe lint --pass proto --corpus deviant.java
  deviant.java:5:5: warning[P002]: must-follow call missing: corpus clients always follow java.util.Enumeration.hasMoreElements/0 with another call (usually java.util.Enumeration.nextElement/0)
  0 errors, 1 warning, 0 infos

Protocol findings are warnings, so they obey the same --strict matrix:

  $ ../../bin/prospector_cli.exe lint --pass proto --corpus deviant.java --strict
  deviant.java:5:5: warning[P002]: must-follow call missing: corpus clients always follow java.util.Enumeration.hasMoreElements/0 with another call (usually java.util.Enumeration.nextElement/0)
  0 errors, 1 warning, 0 infos
  [1]

The JSON report is deterministic: findings sort by (file, position, code),
independent of the order the passes ran in:

  $ cat > warn2.java <<'JAVA'
  > package c;
  > class K2 {
  >   A m(A p) { A unused = p.id(); return p.id(); }
  > }
  > JAVA
  $ ../../bin/prospector_cli.exe lint --api api.japi --corpus bad.java --corpus warn2.java --pass corpus --pass api --json > ab.json
  [1]
  $ ../../bin/prospector_cli.exe lint --api api.japi --corpus bad.java --corpus warn2.java --pass api --pass corpus --json > ba.json
  [1]
  $ cmp ab.json ba.json
  $ cat ab.json
  {"diagnostics": [{"severity": "error", "code": "C005", "file": "bad.java", "line": 3, "col": 20, "message": "cast to p.D, unrelated to the static type p.A"}, {"severity": "error", "code": "C001", "file": "bad.java", "line": 4, "col": 23, "message": "'a' is used but never assigned in c.K.n/0"}, {"severity": "warning", "code": "C004", "file": "warn2.java", "line": 3, "col": 25, "message": "local 'unused' is never used"}], "errors": 2, "warnings": 1, "infos": 0}
