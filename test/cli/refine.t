Spec-by-example disambiguation, locally: --auto answers every probe the way
the simulated study programmer does (keep the rank-1 result), so the
transcript is deterministic.

  $ ../../bin/prospector_cli.exe refine --auto java.io.File java.io.BufferedReader
  10 candidates
  question 1:
    given input = File("src/Main.java")
    which output do you expect?
      [0] new BufferedReader(new FileReader(File("src/Main.java")))   (1 candidate)
      [1] new BufferedReader(new FileReader(File("src/Main.java")), <size>)   (1 candidate)
      [2] new LineNumberReader(new FileReader(File("src/Main.java")))   (1 candidate)
      [3] new BufferedReader(new StringReader("/src/Main.java"))   (1 candidate)
      [4] new BufferedReader(new StringReader("/src/Main.java"), <size>)   (1 candidate)
      [5] new BufferedReader(new StringReader("Main.java"))   (1 candidate)
      [6] new BufferedReader(new StringReader("Main.java"), <size>)   (1 candidate)
      [7] new BufferedReader(new StringReader("src/Main.java"))   (1 candidate)
      [8] new BufferedReader(new StringReader("src/Main.java"), <size>)   (1 candidate)
      [9] new BufferedReader(new FileReader("/src/Main.java"))   (1 candidate)
    answer: 0
  converged after 1 question: result #1 of the ranked list
  λx. new BufferedReader(new FileReader(x)) : File -> BufferedReader
    FileReader fileReader = new FileReader(file);
    BufferedReader bufferedReader = new BufferedReader(fileReader);

The assist-shaped session pools candidates from every visible variable:

  $ ../../bin/prospector_cli.exe refine --auto org.eclipse.swt.widgets.Shell --var d:org.eclipse.swt.widgets.Display
  9 candidates
  question 1:
    given () = ()
    given d = Display("src/Main.java")
    which output do you expect?
      [0] Shell(Display())   (2 candidates)
      [1] new Shell(Display())   (2 candidates)
      [2] Shell()   (1 candidate)
      [3] new Shell(Display("src/Main.java"))   (1 candidate)
      [4] Shell(Display("src/Main.java"))   (1 candidate)
      [5] Shell(new Display())   (1 candidate)
      [6] new Shell(new Display())   (1 candidate)
    answer: 2
  converged after 1 question: result #1 of the ranked list
  λ(). JDIDebugUIPlugin.getActiveWorkbenchShell() : void -> Shell
    Shell shell = JDIDebugUIPlugin.getActiveWorkbenchShell();

Interactive answers come from stdin: a wrong number re-asks, and when no
probe can split the survivors, rank order decides:

  $ printf '99\n0\n' | ../../bin/prospector_cli.exe refine java.io.File java.io.FileReader
  8 candidates
  question 1:
    given input = File("src/Main.java")
    which output do you expect?
      [0] new FileReader("File(\"src/Main.java\")")   (2 candidates)
      [1] new FileReader(File("src/Main.java"))   (1 candidate)
      [2] new FileReader("/src/Main.java")   (1 candidate)
      [3] new FileReader("Main.java")   (1 candidate)
      [4] new FileReader("src/Main.java")   (1 candidate)
      [5] new FileReader(String(<parentComponent>, File("src/Main.java")))   (1 candidate)
      [6] (can't tell)   (1 candidate)
    answer [0-6]:   choice 99 is out of range
  question 1:
    given input = File("src/Main.java")
    which output do you expect?
      [0] new FileReader("File(\"src/Main.java\")")   (2 candidates)
      [1] new FileReader(File("src/Main.java"))   (1 candidate)
      [2] new FileReader("/src/Main.java")   (1 candidate)
      [3] new FileReader("Main.java")   (1 candidate)
      [4] new FileReader("src/Main.java")   (1 candidate)
      [5] new FileReader(String(<parentComponent>, File("src/Main.java")))   (1 candidate)
      [6] (can't tell)   (1 candidate)
    answer [0-6]: no probe can split the remaining 2 candidates; rank order decides: result #5
  λx. new FileReader(String.valueOf(x)) : File -> FileReader
    String string = String.valueOf(file);
    FileReader fileReader = new FileReader(string);

The same session over the wire. Start a daemon:

  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port >server.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done

refine-start returns the session id and the first question:

  $ ../../bin/prospector_cli.exe client --port-file port refine-start java.io.File java.io.BufferedReader
  session r1: 10 candidate(s), 10 live, 0 question(s) answered
  given input = File("src/Main.java")
  which output do you expect?
    [0] new BufferedReader(new FileReader(File("src/Main.java")))   (1 candidate)
    [1] new BufferedReader(new FileReader(File("src/Main.java")), <size>)   (1 candidate)
    [2] new LineNumberReader(new FileReader(File("src/Main.java")))   (1 candidate)
    [3] new BufferedReader(new StringReader("/src/Main.java"))   (1 candidate)
    [4] new BufferedReader(new StringReader("/src/Main.java"), <size>)   (1 candidate)
    [5] new BufferedReader(new StringReader("Main.java"))   (1 candidate)
    [6] new BufferedReader(new StringReader("Main.java"), <size>)   (1 candidate)
    [7] new BufferedReader(new StringReader("src/Main.java"))   (1 candidate)
    [8] new BufferedReader(new StringReader("src/Main.java"), <size>)   (1 candidate)
    [9] new BufferedReader(new FileReader("/src/Main.java"))   (1 candidate)

A live session shows up in stats:

  $ ../../bin/prospector_cli.exe client --port-file port stats | grep sessions
  sessions: 1
  refine_sessions: 1

Answering the branch that keeps rank-1 converges immediately; the reply
carries the surviving result:

  $ ../../bin/prospector_cli.exe client --port-file port refine-answer r1 0
  session r1: 10 candidate(s), 1 live, 1 question(s) answered
  converged: result #1
  λx. new BufferedReader(new FileReader(x)) : File -> BufferedReader
    FileReader fileReader = new FileReader(file);
    BufferedReader bufferedReader = new BufferedReader(fileReader);

refine-status echoes the converged state without advancing anything:

  $ ../../bin/prospector_cli.exe client --port-file port refine-status r1
  session r1: 10 candidate(s), 1 live, 1 question(s) answered
  converged: result #1
  λx. new BufferedReader(new FileReader(x)) : File -> BufferedReader
    FileReader fileReader = new FileReader(file);
    BufferedReader bufferedReader = new BufferedReader(fileReader);

Answering a converged session is a typed bad_request, not an internal error:

  $ ../../bin/prospector_cli.exe client --port-file port refine-answer r1 42
  error[bad_request]: session has already converged; no question is pending
  [1]

refine-stop frees the slot; later ops on the id get session_expired:

  $ ../../bin/prospector_cli.exe client --port-file port refine-stop r1
  stopped r1
  $ ../../bin/prospector_cli.exe client --port-file port refine-status r1
  error[session_expired]: unknown or expired session "r1"
  [1]
  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV

TTL eviction: with --session-ttl 0 a session is already idle-expired by the
time the next op sweeps the table:

  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port2 --session-ttl 0 >server2.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port2 ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ ../../bin/prospector_cli.exe client --port-file port2 refine-start java.io.File java.io.BufferedReader | head -1
  session r1: 10 candidate(s), 10 live, 0 question(s) answered
  $ ../../bin/prospector_cli.exe client --port-file port2 refine-answer r1 0
  error[session_expired]: unknown or expired session "r1"
  [1]
  $ ../../bin/prospector_cli.exe client --port-file port2 shutdown
  draining
  $ wait $SRV

Drain beats sessions: a SIGINT between two stdio requests turns the second
into a typed shutting_down reply, never an internal error. The first request
opens a session, the sleep gives the signal time to land mid-stream:

  $ { printf '{"op":"refine_start","tin":"java.io.File","tout":"java.io.BufferedReader"}\n'; sleep 4; printf '{"op":"refine_answer","session":"r1","choice":0}\n'; } | ../../bin/prospector_cli.exe serve --stdio --no-mining >stdio.out 2>/dev/null &
  $ SRV=$!
  $ i=0; while [ "$(wc -l <stdio.out)" -lt 1 ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ kill -INT $SRV
  $ wait $SRV
  $ grep -c '"session": "r1"' stdio.out
  1
  $ tail -1 stdio.out
  {"id": null, "ok": false, "error": {"code": "shutting_down", "message": "server is draining; refine sessions are closed"}}
