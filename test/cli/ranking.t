--ranking is validated exactly like --strategy: an unknown spelling gets a
one-line error and exit 1, never an exception trace.

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry --ranking bogus
  error: unknown ranking "bogus" (expected "paper" or "mined")
  [1]

Spelling out the default is accepted and changes nothing:

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 1 > paper.out
  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 1 --ranking paper > explicit.out
  $ cmp paper.out explicit.out

Under the mined ranking, best-first stays byte-identical to the exhaustive
oracle — the candidate set is the same paper-cost budget either way, only
the order changes:

  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 --ranking mined > bf.out
  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 --ranking mined --strategy exhaustive > ex.out
  $ cmp bf.out ex.out

  $ ../../bin/prospector_cli.exe assist org.eclipse.ui.IEditorInput -v ep:org.eclipse.ui.IEditorPart -n 3 --ranking mined > bf.out
  $ ../../bin/prospector_cli.exe assist org.eclipse.ui.IEditorInput -v ep:org.eclipse.ui.IEditorPart -n 3 --ranking mined --strategy exhaustive > ex.out
  $ cmp bf.out ex.out

The corpus-mined idiom stays on top under the usage-weighted order:

  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 1 --ranking mined
  #1  λx. AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom(x), false) : IFile -> ASTNode
        ICompilationUnit compilationUnit = JavaCore.createCompilationUnitFrom(file);
        CompilationUnit compilationUnit2 = AST.parseCompilationUnit(compilationUnit, false);

Asking for the mined ranking without a mined corpus falls back to the
paper order, with a warning instead of silence:

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 1 --ranking mined --no-mining
  prospector_cli.exe: [WARNING] mined ranking requested but no usage model is loaded; falling back to the paper ranking
  #1  λ(). DocumentProviderRegistry.getDefault() : void -> DocumentProviderRegistry
        DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();

The server validates the ranking field the same way. Start a daemon:

  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port >server.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done

An unknown ranking spelling in a request is a bad_request reply naming the
accepted spellings, before any engine work:

  $ ../../bin/prospector_cli.exe client --port-file port raw '{"op":"query","tin":"void","tout":"org.eclipse.ui.texteditor.DocumentProviderRegistry","ranking":"bogus"}'
  error[bad_request]: unknown ranking "bogus" (expected "paper" or "mined")
  [1]

A mined-ranking query over the wire matches the one-shot CLI byte for byte:

  $ ../../bin/prospector_cli.exe client --port-file port query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 5 --ranking mined > wire.out
  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 5 --ranking mined > local.out
  $ cmp wire.out local.out

  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV
