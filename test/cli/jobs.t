--jobs is validated like --workers and --cache-capacity: zero or negative
values get a one-line error and exit 1, never an exception trace.

  $ cat > queries.txt <<'EOF'
  > java.io.InputStream java.io.BufferedReader
  > void org.eclipse.ui.texteditor.DocumentProviderRegistry
  > EOF
  $ ../../bin/prospector_cli.exe batch queries.txt --jobs 0
  error: --jobs must be at least 1 (got 0)
  [1]
  $ ../../bin/prospector_cli.exe batch queries.txt -j-3
  error: --jobs must be at least 1 (got -3)
  [1]
  $ ../../bin/prospector_cli.exe mine --jobs 0
  error: --jobs must be at least 1 (got 0)
  [1]
  $ ../../bin/prospector_cli.exe serve --jobs=-1
  error: --jobs must be at least 1 (got -1)
  [1]

Fan-out never changes answers: every subcommand is byte-identical at any
job count.

  $ ../../bin/prospector_cli.exe batch queries.txt -n 2 > batch.j1
  $ ../../bin/prospector_cli.exe batch queries.txt -n 2 --jobs 4 > batch.j4
  $ diff batch.j1 batch.j4
  $ ../../bin/prospector_cli.exe batch queries.txt --no-cache -n 2 --jobs 4 > batch.nc.j4
  $ diff batch.j1 batch.nc.j4
  $ ../../bin/prospector_cli.exe mine > mine.j1
  $ ../../bin/prospector_cli.exe mine --jobs 4 > mine.j4
  $ diff mine.j1 mine.j4
