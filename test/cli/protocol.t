--protocol is validated exactly like --strategy and --ranking: an unknown
spelling gets a one-line error and exit 1, never an exception trace.

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry --protocol bogus
  error: unknown protocol "bogus" (expected "off", "warn" or "filter")
  [1]

The Table 1 solutions are protocol-clean against the bundled mined model,
so warn mode changes nothing — output is byte-identical to the default:

  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 > off.out
  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 --protocol warn > warn.out
  $ cmp off.out warn.out

Filter mode drops violating candidates after enumeration, never inside the
search, so best-first stays byte-identical to the exhaustive oracle:

  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 --protocol filter > bf.out
  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode --top 5 --protocol filter --strategy exhaustive > ex.out
  $ cmp bf.out ex.out

Asking for protocol checks without a mined corpus falls back to off, with
a warning instead of silence:

  $ ../../bin/prospector_cli.exe query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 1 --protocol warn --no-mining
  prospector_cli.exe: [WARNING] protocol checking requested but no protocol model is loaded; running with protocol checks off
  #1  λ(). DocumentProviderRegistry.getDefault() : void -> DocumentProviderRegistry
        DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();

The server validates the protocol field the same way. Start a daemon:

  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port >server.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done

An unknown protocol spelling in a request is a bad_request reply naming the
accepted spellings, before any engine work:

  $ ../../bin/prospector_cli.exe client --port-file port raw '{"op":"query","tin":"void","tout":"org.eclipse.ui.texteditor.DocumentProviderRegistry","protocol":"bogus"}'
  error[bad_request]: unknown protocol "bogus" (expected "off", "warn" or "filter")
  [1]

A protocol-checked query over the wire matches the one-shot CLI byte for
byte, in both warn and filter mode:

  $ ../../bin/prospector_cli.exe client --port-file port query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 5 --protocol warn > wire.out
  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 5 --protocol warn > local.out
  $ cmp wire.out local.out

  $ ../../bin/prospector_cli.exe client --port-file port query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 5 --protocol filter > wire.out
  $ ../../bin/prospector_cli.exe query org.eclipse.core.resources.IFile org.eclipse.jdt.core.dom.ASTNode -n 5 --protocol filter > local.out
  $ cmp wire.out local.out

  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV
