Batch mode answers a whole query file through one engine; repeats and
duplicate lines are cache hits, and --cache-stats shows the accounting
(the duplicated pair is 1 miss + 1 hit on the first pass, then every
query hits on the two repeat passes: 3 misses, 9 hits).

  $ cat > queries.txt <<'EOF'
  > # Table 1 favorites
  > java.io.InputStream java.io.BufferedReader
  > void org.eclipse.ui.texteditor.DocumentProviderRegistry
  > java.io.InputStream java.io.BufferedReader
  > no.Such also.Missing
  > EOF
  $ ../../bin/prospector_cli.exe batch queries.txt --repeat 3 --cache-stats -n 1
  (java.io.InputStream, java.io.BufferedReader): 1 result(s)
  #1  λx. new BufferedReader(new InputStreamReader(x)) : InputStream -> BufferedReader
        InputStreamReader inputStreamReader = new InputStreamReader(inputStream);
        BufferedReader bufferedReader = new BufferedReader(inputStreamReader);
  (void, org.eclipse.ui.texteditor.DocumentProviderRegistry): 1 result(s)
  #1  λ(). DocumentProviderRegistry.getDefault() : void -> DocumentProviderRegistry
        DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();
  (java.io.InputStream, java.io.BufferedReader): 1 result(s)
  #1  λx. new BufferedReader(new InputStreamReader(x)) : InputStream -> BufferedReader
        InputStreamReader inputStreamReader = new InputStreamReader(inputStream);
        BufferedReader bufferedReader = new BufferedReader(inputStreamReader);
  (no.Such, also.Missing): 0 result(s)
  cache: 3/512 entries, 9 hits, 3 misses (75% hit rate), 0 evictions, 0 invalidations

The same file with the cache disabled gives identical answers — only the
accounting line disappears:

  $ ../../bin/prospector_cli.exe batch queries.txt --no-cache -n 1 > plain.out
  $ ../../bin/prospector_cli.exe batch queries.txt -n 1 > cached.out
  $ diff plain.out cached.out

A malformed line is a clean error:

  $ printf 'only-one-token\n' > bad.txt
  $ ../../bin/prospector_cli.exe batch bad.txt
  error: bad query line "only-one-token", expected "TIN TOUT"
  [1]
