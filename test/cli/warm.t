A cold start with --save-graph persists a v2 CSR snapshot (plus the reach
index) next to the named path:

  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port --save-graph cache.froz >cold.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ ../../bin/prospector_cli.exe client --port-file port health
  ok
  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV
  $ test -f cache.froz && echo "snapshot saved"
  snapshot saved
  $ test -f cache.froz.reach && echo "reach index saved"
  reach index saved
  $ grep -c "graph: built in" cold.log
  1

A restart mmaps the snapshot instead of rebuilding, and the warm daemon's
answers are byte-identical to the cold ones (compare serve.t):

  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port --save-graph cache.froz >warm.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ ../../bin/prospector_cli.exe client --port-file port query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 2
  #1  λ(). DocumentProviderRegistry.getDefault() : void -> DocumentProviderRegistry
        DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();
  $ ../../bin/prospector_cli.exe client --port-file port stats
  requests: 1
  graph: 386 nodes, 1142 edges
  cache: 1/2048 entries, 0 hits, 1 misses
  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV
  $ grep -c "mmap warm start" warm.log
  1
  $ grep -c "reach index loaded" warm.log
  1

A damaged snapshot is a warning and a cold rebuild, never a crash — and
the rebuild replaces the damaged file:

  $ printf 'PROSPECTOR-FROZ2 then garbage where the payload should be' > cache.froz
  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port --save-graph cache.froz >corrupt.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ ../../bin/prospector_cli.exe client --port-file port health
  ok
  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV
  $ grep -c "warning: ignoring cache.froz: corrupt file" corrupt.log
  1
  $ grep -c "graph: built in" corrupt.log
  1

A file that is not ours at all reports its foreign magic:

  $ printf 'some other tool wrote this file' > cache.froz
  $ rm -f cache.froz.reach
  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port --save-graph cache.froz >foreign.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ ../../bin/prospector_cli.exe client --port-file port health
  ok
  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV
  $ grep -c "warning: ignoring cache.froz: bad magic" foreign.log
  1
