The daemon on an ephemeral port, with the port file as rendezvous:

  $ ../../bin/prospector_cli.exe serve --port 0 --port-file port --max-request-bytes 512 >server.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done

Health check:

  $ ../../bin/prospector_cli.exe client --port-file port health
  ok

A query through the daemon is byte-identical to the one-shot CLI (compare
with the same query in run.t):

  $ ../../bin/prospector_cli.exe client --port-file port query void org.eclipse.ui.texteditor.DocumentProviderRegistry -n 2
  #1  λ(). DocumentProviderRegistry.getDefault() : void -> DocumentProviderRegistry
        DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();

A malformed request gets an error reply, not a hung daemon:

  $ ../../bin/prospector_cli.exe client --port-file port raw 'not json'
  error[bad_request]: malformed request: at byte 0: expected null
  [1]

An oversized request line (the daemon was started with a 512-byte cap) is
rejected and the connection survives for the next request:

  $ ../../bin/prospector_cli.exe client --port-file port raw "\"$(printf 'x%.0s' $(seq 1 600))\""
  error[too_large]: request exceeds 512 bytes
  [1]

The daemon is still healthy after both:

  $ ../../bin/prospector_cli.exe client --port-file port health
  ok

Stats reflect the requests served so far:

  $ ../../bin/prospector_cli.exe client --port-file port stats
  requests: 4
  graph: 386 nodes, 1142 edges
  cache: 1/2048 entries, 0 hits, 1 misses

Graceful drain over the wire:

  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV

The drain removed the port file and dumped metrics on stderr:

  $ test -f port || echo "port file removed"
  port file removed
  $ grep -c "metrics:" server.log
  1
