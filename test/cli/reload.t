Live reload: patch the daemon's model over the wire, no restart.

A tiny API so node/edge counts stay readable. --no-mining keeps the graph
unenriched, which is what makes the body-only edit below row-spliceable;
--save-graph exercises the re-persist hook.

  $ cat > api.japi <<'JAPI'
  > package p;
  > class A { A id(); B mk(); }
  > class B { }
  > JAPI
  $ ../../bin/prospector_cli.exe serve --api api.japi --no-mining --port 0 --port-file port --save-graph cache.froz >server.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done

Before the reload, one path from A to B:

  $ ../../bin/prospector_cli.exe client --port-file port query p.A p.B
  #1  λx. x.mk() : A -> B
        B b = a.mk();

A body-only class replacement splices in place — node ids survive, only
the touched CSR rows are rewritten:

  $ cat > delta.japi <<'JAPI'
  > package p;
  > class A { A id(); B mk(); B mk2(); }
  > JAPI
  $ ../../bin/prospector_cli.exe client --port-file port reload delta.japi
  reloaded: 1 op(s) applied (spliced), 2 node(s) touched, generation 10

The new method answers immediately:

  $ ../../bin/prospector_cli.exe client --port-file port query p.A p.B
  #1  λx. x.mk() : A -> B
        B b = a.mk();
  #2  λx. x.mk2() : A -> B
        B b = a.mk2();

Adding a class is structural, so it rebuilds (the sanctioned fallback) —
and the added class is queryable at once:

  $ cat > grow.japi <<'JAPI'
  > package p;
  > class C { B toB(); }
  > JAPI
  $ ../../bin/prospector_cli.exe client --port-file port reload grow.japi
  reloaded: 1 op(s) applied (rebuilt), 4 node(s) touched, generation 12
  $ ../../bin/prospector_cli.exe client --port-file port query p.C p.B
  #1  λx. x.toB() : C -> B
        B b = c.toB();

Removing it again:

  $ ../../bin/prospector_cli.exe client --port-file port reload --remove p.C
  reloaded: 1 op(s) applied (rebuilt), 5 node(s) touched, generation 14

An invalid delta is rejected whole, with one typed line per bad op, and
leaves the model untouched:

  $ ../../bin/prospector_cli.exe client --port-file port reload --remove p.Nope --remove java.lang.Object
  error[bad_request]: delta rejected: 2 invalid op(s)
    op 0 (remove-class p.Nope): not declared
    op 1 (remove-class java.lang.Object): java.lang.Object is not removable
  [1]
  $ ../../bin/prospector_cli.exe client --port-file port query p.A p.B | head -1
  #1  λx. x.mk() : A -> B

Stats now carry the reload gauges (absent before the first reload — see
serve.t, whose output is unchanged):

  $ ../../bin/prospector_cli.exe client --port-file port stats
  requests: 8
  graph: 4 nodes, 5 edges
  cache: 4/2048 entries, 0 hits, 4 misses
  graph_generation: 14
  reloads_applied: 3

  $ ../../bin/prospector_cli.exe client --port-file port shutdown
  draining
  $ wait $SRV

Every successful reload re-persisted the --save-graph image:

  $ grep -c "re-saved" server.log
  3

A warm restart from the re-persisted snapshot serves the reloaded model —
the patched image, not the boot-time one:

  $ ../../bin/prospector_cli.exe serve --api api.japi --no-mining --port 0 --port-file port2 --save-graph cache.froz >warm.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port2 ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ ../../bin/prospector_cli.exe client --port-file port2 query p.A p.B | grep -c mk2
  2
  $ ../../bin/prospector_cli.exe client --port-file port2 shutdown
  draining
  $ wait $SRV
  $ grep -c "mmap warm start" warm.log
  1

serve --watch polls a .japi file and feeds changes through the same op:

  $ cp api.japi live.japi
  $ ../../bin/prospector_cli.exe serve --api api.japi --no-mining --port 0 --port-file port3 --watch live.japi >watch.log 2>&1 &
  $ SRV=$!
  $ i=0; while [ ! -f port3 ] && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ sleep 1
  $ cat > live.japi <<'JAPI'
  > package p;
  > class A { A id(); B mk(); B watched(); }
  > class B { }
  > JAPI
  $ i=0; while ! grep -q "watch: reloaded" watch.log && [ $i -lt 200 ]; do sleep 0.1; i=$((i+1)); done
  $ ../../bin/prospector_cli.exe client --port-file port3 query p.A p.B | grep -c watched
  2
  $ ../../bin/prospector_cli.exe client --port-file port3 shutdown
  draining
  $ wait $SRV
  $ grep -c "watch: reloaded" watch.log
  1
