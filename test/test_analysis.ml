(* Tests for the analyzer: the jungloid soundness verifier (J codes), the
   API-model/graph lint (A codes), the corpus linter (C codes), the codegen
   re-check (G codes), and their wiring into Query ?verify and the mining
   extraction gate. Each lint rule gets a positive (fires) and a negative
   (stays quiet) case. *)

module Qname = Javamodel.Qname
module Jtype = Javamodel.Jtype
module Member = Javamodel.Member
module Decl = Javamodel.Decl
module Hierarchy = Javamodel.Hierarchy
module Elem = Prospector.Elem
module Jungloid = Prospector.Jungloid
module Query = Prospector.Query
module Graph = Prospector.Graph
module Diagnostic = Analysis.Diagnostic
module Verify = Analysis.Verify
module Apilint = Analysis.Apilint
module Corpuslint = Analysis.Corpuslint
module Gencheck = Analysis.Gencheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qn = Qname.of_string
let r s = Jtype.ref_of_string s

let has_code code ds = List.exists (fun d -> d.Diagnostic.code = code) ds

let codes ds =
  List.map (fun d -> d.Diagnostic.code) ds |> List.sort_uniq compare

let errors_only ds = Diagnostic.errors ds

(* ---------- the verifier's little world ---------- *)

let verifier_api () =
  Japi.Loader.load_string
    {|
    package p;
    class A { B getB(); static A make(); protected A hidden(); }
    class B extends A { }
    class C { C(A a); }
    interface I { A toA(); }
    abstract class Abs { }
    class D { }
    |}

let m_getB = Member.meth "getB" ~params:[] ~ret:(r "p.B")
let m_make = Member.meth ~static:true "make" ~params:[] ~ret:(r "p.A")
let m_hidden = Member.meth ~vis:Member.Protected "hidden" ~params:[] ~ret:(r "p.A")

let call_getB = Elem.Instance_call { owner = qn "p.A"; meth = m_getB; input = Elem.Receiver }

let j input elems = Jungloid.make ~input elems

(* sound chain: A --getB--> B --widen--> A --C(·)--> C *)
let verify_sound_chain () =
  let h = verifier_api () in
  let chain =
    j (r "p.A")
      [
        call_getB;
        Elem.Widen { from_ = r "p.B"; to_ = r "p.A" };
        Elem.Ctor_call
          { owner = qn "p.C"; ctor = Member.ctor [ ("a", r "p.A") ]; input = Elem.Param 0 };
      ]
  in
  check_int "no diagnostics" 0 (List.length (Verify.check h chain));
  check_bool "sound" true (Verify.sound h chain)

let verify_j001 () =
  let h = verifier_api () in
  (* getB : A -> B followed directly by getB : A -> ... does not compose *)
  let chain = j (r "p.A") [ call_getB; call_getB ] in
  check_bool "J001 fires" true (has_code "J001" (Verify.check h chain));
  check_bool "unsound" false (Verify.sound h chain)

let verify_j002 () =
  let h = verifier_api () in
  let phantom = Member.meth "nope" ~params:[] ~ret:(r "p.B") in
  let chain =
    j (r "p.A") [ Elem.Instance_call { owner = qn "p.A"; meth = phantom; input = Elem.Receiver } ]
  in
  check_bool "J002 fires" true (has_code "J002" (Verify.check h chain));
  (* same member, different param names / visibility info: still fine *)
  check_bool "declared member passes" true (Verify.sound h (j (r "p.A") [ call_getB ]))

let verify_j003 () =
  let h = verifier_api () in
  let bad = j (r "p.A") [ Elem.Widen { from_ = r "p.A"; to_ = r "p.D" } ] in
  let good = j (r "p.B") [ Elem.Widen { from_ = r "p.B"; to_ = r "p.A" } ] in
  check_bool "J003 fires" true (has_code "J003" (Verify.check h bad));
  check_bool "real widening passes" true (Verify.sound h good)

let verify_j004 () =
  let h = verifier_api () in
  let bad = j (r "p.A") [ Elem.Downcast { from_ = r "p.A"; to_ = r "p.D" } ] in
  let good = j (r "p.A") [ Elem.Downcast { from_ = r "p.A"; to_ = r "p.B" } ] in
  let via_iface = j (r "p.I") [ Elem.Downcast { from_ = r "p.I"; to_ = r "p.D" } ] in
  check_bool "J004 fires" true (has_code "J004" (Verify.check h bad));
  check_bool "downcast to subtype passes" true (Verify.sound h good);
  check_bool "interface crosscast passes" true (Verify.sound h via_iface)

let verify_j005 () =
  let h = verifier_api () in
  let bad =
    j (r "p.A") [ Elem.Static_call { owner = qn "p.A"; meth = m_make; input = Elem.Receiver } ]
  in
  let oob =
    j (r "p.A")
      [
        Elem.Ctor_call
          { owner = qn "p.C"; ctor = Member.ctor [ ("a", r "p.A") ]; input = Elem.Param 3 };
      ]
  in
  check_bool "J005: static call with receiver input" true
    (has_code "J005" (Verify.check h bad));
  check_bool "J005: param index out of range" true (has_code "J005" (Verify.check h oob));
  check_bool "static call with no input passes" true
    (Verify.sound h
       (j Jtype.Void [ Elem.Static_call { owner = qn "p.A"; meth = m_make; input = Elem.No_input } ]))

let verify_j006 () =
  let h = verifier_api () in
  let chain =
    j (r "p.A") [ Elem.Instance_call { owner = qn "p.A"; meth = m_hidden; input = Elem.Receiver } ]
  in
  let ds = Verify.check h chain in
  check_bool "J006 fires" true (has_code "J006" ds);
  check_bool "visibility is only a warning" true (Verify.sound h chain)

let verify_j008 () =
  let h = verifier_api () in
  let iface =
    j Jtype.Void [ Elem.Ctor_call { owner = qn "p.I"; ctor = Member.ctor []; input = Elem.No_input } ]
  in
  let abs =
    j Jtype.Void
      [ Elem.Ctor_call { owner = qn "p.Abs"; ctor = Member.ctor []; input = Elem.No_input } ]
  in
  check_bool "J008 on interface is an error" false (Verify.sound h iface);
  check_bool "J008 fires on interface" true (has_code "J008" (Verify.check h iface));
  check_bool "J008 fires on abstract class" true (has_code "J008" (Verify.check h abs));
  check_bool "abstract ctor is only a warning" true (Verify.sound h abs)

let verify_j009 () =
  let h = verifier_api () in
  let phantom = Member.meth "m" ~params:[] ~ret:(r "p.A") in
  let chain =
    j (r "x.Unknown")
      [ Elem.Instance_call { owner = qn "x.Unknown"; meth = phantom; input = Elem.Receiver } ]
  in
  let ds = Verify.check h chain in
  check_bool "J009 fires" true (has_code "J009" ds);
  check_bool "opaque owner is not an error" true (Verify.sound h chain)

(* ---------- API-model lint ---------- *)

let apilint_hierarchy_rules () =
  (* A001: reference to an undeclared type (closed over as synthetic) *)
  let h1 =
    Hierarchy.of_decls
      [ Decl.make ~methods:[ Member.meth "f" ~params:[] ~ret:(r "x.Gone") ] (qn "p.A") ]
  in
  check_bool "A001 fires" true (has_code "A001" (Apilint.lint_hierarchy h1));
  (* A002: duplicate member declaration *)
  let dup = Member.meth "f" ~params:[] ~ret:Jtype.Void in
  let h2 = Hierarchy.of_decls [ Decl.make ~methods:[ dup; dup ] (qn "p.A") ] in
  check_bool "A002 fires" true (has_code "A002" (Apilint.lint_hierarchy h2));
  (* A003: interface with a constructor *)
  let h3 =
    Hierarchy.of_decls [ Decl.make ~kind:Decl.Interface ~ctors:[ Member.ctor [] ] (qn "p.I") ]
  in
  check_bool "A003 fires" true (has_code "A003" (Apilint.lint_hierarchy h3));
  check_bool "A003 is an error" true (errors_only (Apilint.lint_hierarchy h3) <> []);
  (* A004: class extending an interface *)
  let h4 =
    Hierarchy.of_decls
      [ Decl.make ~kind:Decl.Interface (qn "p.I"); Decl.make ~extends:[ qn "p.I" ] (qn "p.A") ]
  in
  check_bool "A004 fires" true (has_code "A004" (Apilint.lint_hierarchy h4));
  (* A005: void parameter *)
  let h5 =
    Hierarchy.of_decls
      [
        Decl.make
          ~methods:[ Member.meth "f" ~params:[ ("x", Jtype.Void) ] ~ret:Jtype.Void ]
          (qn "p.A");
      ]
  in
  check_bool "A005 fires" true (has_code "A005" (Apilint.lint_hierarchy h5));
  (* negative: a well-formed little model is completely quiet *)
  let good = verifier_api () in
  check_int "clean model has no errors" 0 (List.length (errors_only (Apilint.lint_hierarchy good)))

let apilint_graph_rules () =
  let h = verifier_api () in
  (* A010: widening edge whose endpoints are unrelated *)
  let g = Graph.create () in
  let a = Graph.ensure_type_node g (r "p.A") in
  let d = Graph.ensure_type_node g (r "p.D") in
  Graph.add_edge g ~src:a (Elem.Widen { from_ = r "p.A"; to_ = r "p.D" }) ~dst:d;
  let ds = Apilint.lint_graph h g in
  check_bool "A010 fires" true (has_code "A010" ds);
  (* A011: self-loop conversion; A012: duplicate edge *)
  let g2 = Graph.create () in
  let a2 = Graph.ensure_type_node g2 (r "p.A") in
  Graph.add_edge g2 ~src:a2 (Elem.Widen { from_ = r "p.A"; to_ = r "p.A" }) ~dst:a2;
  let b2 = Graph.ensure_type_node g2 (r "p.B") in
  Graph.add_edge g2 ~src:b2 (Elem.Widen { from_ = r "p.B"; to_ = r "p.A" }) ~dst:a2;
  Graph.add_edge g2 ~src:b2 (Elem.Widen { from_ = r "p.B"; to_ = r "p.A" }) ~dst:a2;
  let ds2 = Apilint.lint_graph h g2 in
  check_bool "A011 fires" true (has_code "A011" ds2);
  (* A012 is defensive: [Graph.add_edge] already drops exact duplicates, so
     the duplicate add above must leave the graph (and the lint) quiet. *)
  check_bool "A012 stays quiet through add_edge" false (has_code "A012" ds2);
  (* A014: edge whose endpoints disagree with its elementary jungloid *)
  let g3 = Graph.create () in
  let a3 = Graph.ensure_type_node g3 (r "p.A") in
  let d3 = Graph.ensure_type_node g3 (r "p.D") in
  Graph.add_edge g3 ~src:a3 call_getB ~dst:d3;
  check_bool "A014 fires" true (has_code "A014" (Apilint.lint_graph h g3));
  (* negative: the signature graph of a clean model has no graph errors *)
  let sg = Prospector.Sig_graph.build h in
  check_int "signature graph is clean" 0 (List.length (errors_only (Apilint.lint_graph h sg)))

let apilint_bundled_model_clean () =
  let h = Apidata.Api.hierarchy () in
  let g, _stats = Apidata.Api.jungloid_graph () in
  let ds = Apilint.lint ~graph:g h in
  check_int "bundled model errors" 0 (Diagnostic.count Diagnostic.Error ds);
  check_int "bundled model warnings" 0 (Diagnostic.count Diagnostic.Warning ds)

(* ---------- corpus lint ---------- *)

let lint_api () =
  Japi.Loader.load_string
    {|
    package p;
    class A { A id(); B mk(); }
    class B extends A { }
    class D { }
    |}

let lint_corpus src =
  let api = lint_api () in
  Corpuslint.lint_program (Minijava.Resolve.parse_program ~api [ ("t.java", src) ])

let corpuslint_c001 () =
  let ds =
    lint_corpus
      {|
      package c;
      class K {
        A m() { A a; return a.id(); }
      }
      |}
  in
  check_bool "C001 fires" true (has_code "C001" ds);
  check_bool "C001 is an error" true (errors_only ds <> []);
  (* negative: parameters are implicitly assigned *)
  let quiet = lint_corpus {|
      package c;
      class K { A m(A a) { return a.id(); } }
      |} in
  check_bool "params do not trip C001" false (has_code "C001" quiet)

let corpuslint_c002 () =
  let ds =
    lint_corpus
      {|
      package c;
      class K {
        A m(A p) { A a; A b = a.id(); a = p.id(); return b; }
      }
      |}
  in
  check_bool "C002 fires" true (has_code "C002" ds);
  let quiet =
    lint_corpus
      {|
      package c;
      class K {
        A m(A p) { A a; a = p.id(); A b = a.id(); return b; }
      }
      |}
  in
  check_bool "def-then-use is quiet" false (has_code "C002" quiet)

let corpuslint_c003 () =
  let ds =
    lint_corpus
      {|
      package c;
      class K {
        A m(A p) { A a = p.id(); a = p.id(); return a; }
      }
      |}
  in
  check_bool "C003 fires" true (has_code "C003" ds);
  (* negative: a loop-carried redefinition is not a dead store *)
  let quiet =
    lint_corpus
      {|
      package c;
      class K {
        A m(A p, boolean g) { A a = p.id(); while (g) { a = a.id(); } return a; }
      }
      |}
  in
  check_bool "looped stores are quiet" false (has_code "C003" quiet)

let corpuslint_c004 () =
  let ds =
    lint_corpus
      {|
      package c;
      class K {
        A m(A p) { A unused = p.id(); return p.id(); }
      }
      |}
  in
  check_bool "C004 fires" true (has_code "C004" ds)

let corpuslint_c005_c006 () =
  let ds =
    lint_corpus
      {|
      package c;
      class K {
        D m(A p) { D d = (D) p; return d; }
      }
      |}
  in
  check_bool "C005 fires" true (has_code "C005" ds);
  check_bool "C005 is an error" true (errors_only ds <> []);
  let self_cast =
    lint_corpus
      {|
      package c;
      class K {
        A m(A p) { A a = (A) p; return a; }
      }
      |}
  in
  check_bool "C006 fires" true (has_code "C006" self_cast);
  check_int "C006 is not an error" 0 (List.length (errors_only self_cast));
  let good =
    lint_corpus
      {|
      package c;
      class K {
        B m(A p) { B b = (B) p.id(); return b; }
      }
      |}
  in
  check_bool "downcast to subtype is quiet" false (has_code "C005" good)

let corpuslint_bundled_clean () =
  let api = Apidata.Api.hierarchy () in
  let prog = Minijava.Resolve.parse_program ~api Apidata.Api.corpus_sources in
  let ds = Corpuslint.lint_program prog in
  check_int "bundled corpus errors" 0 (Diagnostic.count Diagnostic.Error ds);
  check_int "bundled corpus warnings" 0 (Diagnostic.count Diagnostic.Warning ds)

let corpuslint_positions () =
  let ds =
    lint_corpus
      {|
      package c;
      class K {
        A m() { A a; return a.id(); }
      }
      |}
  in
  let positioned =
    List.exists
      (fun d ->
        match d.Diagnostic.where with
        | Diagnostic.Source loc -> Minijava.Tast.loc_known loc && loc.Minijava.Tast.file = "t.java"
        | Diagnostic.Subject _ -> false)
      ds
  in
  check_bool "diagnostics carry file/line positions" true positioned

(* ---------- extraction gate ---------- *)

let extract_lint_gate () =
  let api = lint_api () in
  let src =
    {|
    package c;
    class K {
      B good(A p) { B b = (B) p.id(); return b; }
      B bad(A p) { D d = (D) p; B b = (B) p.id(); return b; }
    }
    |}
  in
  let prog = Minijava.Resolve.parse_program ~api [ ("gate.java", src) ] in
  let df = Mining.Dataflow.build prog in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let from_bad exs =
    List.filter (fun (e : Mining.Extract.example) -> contains ~sub:"bad" e.Mining.Extract.origin) exs
  in
  let gated = Mining.Extract.extract df in
  let ungated = Mining.Extract.extract ~lint_gate:false df in
  check_bool "gated extraction still mines the clean method" true
    (List.exists (fun (e : Mining.Extract.example) -> contains ~sub:"good" e.Mining.Extract.origin) gated);
  check_int "no examples from the flagged method" 0 (List.length (from_bad gated));
  check_bool "ungated extraction mines the flagged method" true (from_bad ungated <> [])

(* ---------- gencheck + Table 1 end-to-end ---------- *)

let table1_solutions_verified () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let ms = Apidata.Problems.run_all ~graph ~hierarchy () in
  List.iter
    (fun (m : Apidata.Problems.measured) ->
      List.iter
        (fun (res : Query.result) ->
          let jl = res.Query.jungloid in
          if not (Verify.sound hierarchy jl) then
            Alcotest.failf "unsound solution for %S: %s\n%s"
              m.Apidata.Problems.problem.Apidata.Problems.description
              (Jungloid.to_string jl)
              (String.concat "\n"
                 (List.map Diagnostic.to_string (Verify.check hierarchy jl)));
          if not (Gencheck.clean hierarchy jl) then
            Alcotest.failf "gencheck-dirty solution for %S: %s\n%s"
              m.Apidata.Problems.problem.Apidata.Problems.description
              (Jungloid.to_string jl)
              (String.concat "\n"
                 (List.map Diagnostic.to_string (Gencheck.check hierarchy jl))))
        m.Apidata.Problems.results)
    ms

let table1_verified_filters_zero () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  List.iter
    (fun (p : Apidata.Problems.t) ->
      let q = Query.query p.Apidata.Problems.tin p.Apidata.Problems.tout in
      let plain = Query.run ~graph ~hierarchy q in
      let v = Query.verifier (Verify.sound hierarchy) in
      let verified = Query.run ~verify:v ~graph ~hierarchy q in
      check_int
        (Printf.sprintf "problem %d: vfiltered" p.Apidata.Problems.id)
        0 v.Query.vfiltered;
      check_bool
        (Printf.sprintf "problem %d: same results" p.Apidata.Problems.id)
        true
        (List.for_all2
           (fun (a : Query.result) (b : Query.result) ->
             Jungloid.equal a.Query.jungloid b.Query.jungloid)
           plain verified))
    Apidata.Problems.all

let gencheck_rejects_nonsense () =
  let h = verifier_api () in
  (* an empty chain renders to no statements at all ([Jungloid.make] rejects
     it, so build the record directly — G002 is the defense in depth) *)
  let empty = { Jungloid.input = Jtype.Void; elems = [] } in
  check_bool "empty chain is flagged" true (has_code "G002" (Gencheck.check h empty));
  (* a pure-widen chain is a legal pass-through and must be clean *)
  let pure_widen = j (r "p.B") [ Elem.Widen { from_ = r "p.B"; to_ = r "p.A" } ] in
  check_int "pure-widen chain is clean" 0 (List.length (Gencheck.check h pure_widen));
  (* a sound chain generates lint-clean code *)
  let good = j (r "p.A") [ call_getB ] in
  check_int "clean chain has no findings" 0 (List.length (Gencheck.check h good));
  ignore (codes [])

(* ---------- properties: verifier agrees with the search ---------- *)

(* ---------- mined typestate protocols (P/J-prefixed proto codes) ---------- *)

module Protocol = Analysis.Protocol
module Protolint = Analysis.Protolint
module Tast = Minijava.Tast

let pev ?(void = false) ?(discarded = false) m =
  { Protocol.ev_meth = m; ev_loc = Tast.no_loc; ev_void = void; ev_discarded = discarded }

let pseq ?(producer = Protocol.Call "p.Src.open/0") ty events =
  {
    Protocol.seq_type = ty;
    seq_producer = producer;
    seq_loc = Tast.no_loc;
    seq_events = events;
  }

(* Two iterations of the canonical probe-then-consume protocol: [has/0]
   always starts and is always followed; [next/0] always ends. *)
let iter_model () =
  Protocol.learn
    [
      pseq "p.It" [ pev "has/0"; pev "next/0" ];
      pseq "p.It" [ pev "has/0"; pev "next/0" ];
    ]

let protocol_learn_counts () =
  let m = iter_model () in
  check_bool "p.It modeled" true (Protocol.modeled m ~tname:"p.It");
  check_int "observations" 2 (Protocol.observations m ~tname:"p.It");
  check_int "sequence count" 2 (Protocol.sequence_count m);
  check_bool "has known" true (Protocol.known_method m ~tname:"p.It" ~meth:"has/0");
  check_bool "foo unknown" false (Protocol.known_method m ~tname:"p.It" ~meth:"foo/0");
  check_int "has occurrences" 2 (Protocol.occurrence_count m ~tname:"p.It" ~meth:"has/0");
  check_int "has starts" 2 (Protocol.start_count m ~tname:"p.It" ~meth:"has/0");
  check_int "has ends" 0 (Protocol.end_count m ~tname:"p.It" ~meth:"has/0");
  check_int "next ends" 2 (Protocol.end_count m ~tname:"p.It" ~meth:"next/0");
  check_int "has->next pairs" 2
    (Protocol.pair_count m ~tname:"p.It" ~prev:"has/0" ~next:"next/0");
  check_int "next->has pairs" 0
    (Protocol.pair_count m ~tname:"p.It" ~prev:"next/0" ~next:"has/0");
  (* below the evidence floor: one sequence models nothing *)
  let single = Protocol.learn [ pseq "p.One" [ pev "go/0" ] ] in
  check_bool "single-sequence type unmodeled" false
    (Protocol.modeled single ~tname:"p.One");
  check_bool "unmodeled start never deviant" false
    (Protocol.start_deviant single ~tname:"p.One" ~meth:"stop/0")

let protocol_deviance () =
  let m = iter_model () in
  check_bool "next never starts" true
    (Protocol.start_deviant m ~tname:"p.It" ~meth:"next/0");
  check_bool "has starts fine" false
    (Protocol.start_deviant m ~tname:"p.It" ~meth:"has/0");
  check_bool "next->has deviant" true
    (Protocol.pair_deviant m ~tname:"p.It" ~prev:"next/0" ~next:"has/0");
  check_bool "has->next observed" false
    (Protocol.pair_deviant m ~tname:"p.It" ~prev:"has/0" ~next:"next/0");
  check_bool "has must be followed" true
    (Protocol.must_follow m ~tname:"p.It" ~meth:"has/0" = Some "next/0");
  check_bool "next may end" true
    (Protocol.must_follow m ~tname:"p.It" ~meth:"next/0" = None);
  check_bool "next always terminal" true
    (Protocol.always_terminal m ~tname:"p.It" ~meth:"next/0");
  check_bool "has never terminal" false
    (Protocol.always_terminal m ~tname:"p.It" ~meth:"has/0");
  check_bool "start suggestion" true
    (Protocol.start_suggestion m ~tname:"p.It" = Some "has/0");
  (* smoothing orders never-seen below seen *)
  check_bool "deviant pair smoothed below observed pair" true
    (Protocol.pair_prob m ~tname:"p.It" ~prev:"next/0" ~next:"has/0"
    < Protocol.pair_prob m ~tname:"p.It" ~prev:"has/0" ~next:"next/0");
  (* the empty corpus accepts everything *)
  check_bool "empty model deviates nowhere" false
    (Protocol.start_deviant Protocol.empty ~tname:"p.It" ~meth:"next/0"
    || Protocol.pair_deviant Protocol.empty ~tname:"p.It" ~prev:"next/0"
         ~next:"has/0"
    || Protocol.must_follow Protocol.empty ~tname:"p.It" ~meth:"has/0" <> None);
  check_bool "unmodeled probabilities saturate" true
    (Protocol.start_prob Protocol.empty ~tname:"p.It" ~meth:"next/0" = 1.0)

let protolint_codes () =
  let m = iter_model () in
  let codes_of s = codes (Protolint.check m [ s ]) in
  (* P003: a fresh object's first call was never first in the corpus *)
  check_bool "P003 fires" true
    (has_code "P003" (Protolint.check m [ pseq "p.It" [ pev "next/0" ] ]));
  (* P006 replaces P003 when the object came from a downcast *)
  check_bool "P006 on cast producer" true
    (codes_of (pseq ~producer:Protocol.Cast "p.It" [ pev "next/0" ])
    = [ "P006" ]);
  (* P001: an out-of-order pair between two known methods *)
  check_bool "P001 fires" true
    (has_code "P001"
       (Protolint.check m
          [ pseq "p.It" [ pev "has/0"; pev "next/0"; pev "has/0" ] ]));
  (* P002: the receiver's life ends at a must-follow method *)
  check_bool "P002 alone" true
    (codes_of (pseq "p.It" [ pev "has/0" ]) = [ "P002" ]);
  (* P004: discarded result of an always-terminal call, Info only *)
  let p4 =
    Protolint.check m
      [ pseq "p.It" [ pev "has/0"; pev ~discarded:true "next/0" ] ]
  in
  check_bool "P004 fires" true (has_code "P004" p4);
  check_bool "P004 is info" true (errors_only p4 = [] && Diagnostic.count Diagnostic.Warning p4 = 0);
  (* P005: a method the corpus never calls on the type, Info only *)
  check_bool "P005 fires" true
    (has_code "P005"
       (Protolint.check m [ pseq "p.It" [ pev "has/0"; pev "foo/0" ] ]));
  (* negatives: the canonical sequence is clean; unmodeled types vacuous *)
  check_int "canonical sequence clean" 0
    (List.length (Protolint.check m [ pseq "p.It" [ pev "has/0"; pev "next/0" ] ]));
  check_int "unmodeled type vacuous" 0
    (List.length (Protolint.check m [ pseq "p.Other" [ pev "next/0" ] ]))

(* vetting synthesized jungloids against the same model *)

let m_open = Member.meth "open" ~params:[] ~ret:(r "p.It")
let m_has = Member.meth "has" ~params:[] ~ret:Jtype.(Prim Boolean)
let m_next = Member.meth "next" ~params:[] ~ret:(r "java.lang.Object")

let call_on owner meth =
  Elem.Instance_call { owner = qn owner; meth; input = Elem.Receiver }

let protolint_vet () =
  let m = iter_model () in
  (* J010: the chain's one call on a produced p.It was never first *)
  let j010 =
    Protolint.vet m
      (j (r "p.Src") [ call_on "p.Src" m_open; call_on "p.It" m_next ])
  in
  check_bool "J010 fires" true (has_code "J010" j010);
  (* J011: the chain abandons the object right after a must-follow call *)
  let j011 =
    Protolint.vet m
      (j (r "p.Src") [ call_on "p.Src" m_open; call_on "p.It" m_has ])
  in
  check_bool "J011 fires" true (has_code "J011" j011);
  (* J012: deviant first call on a downcast-produced object *)
  let j012 =
    Protolint.vet m
      (j
         (r "java.lang.Object")
         [
           Elem.Downcast { from_ = r "java.lang.Object"; to_ = r "p.It" };
           call_on "p.It" m_next;
         ])
  in
  check_bool "J012 fires" true (has_code "J012" j012);
  check_bool "J012 not J010" false (has_code "J010" j012);
  (* the query input has unknown provenance: never vetted *)
  check_int "input receiver unvetted" 0
    (List.length (Protolint.vet m (j (r "p.It") [ call_on "p.It" m_next ])));
  (* violations is the string rendering of the same findings *)
  check_int "violations mirror vet" (List.length j010)
    (List.length
       (Protolint.violations m
          (j (r "p.Src") [ call_on "p.Src" m_open; call_on "p.It" m_next ])))

(* the miner end to end on small corpora *)

let protomine_api () =
  Japi.Loader.load_string
    {|
    package q;
    class Src { Iter open(); }
    interface Iter { boolean has(); java.lang.Object next(); }
    |}

let mine_sequences src =
  let api = protomine_api () in
  let prog = Minijava.Resolve.parse_program ~api [ ("t.java", src) ] in
  Mining.Protomine.sequences (Mining.Dataflow.build prog)

let iter_seqs seqs =
  List.filter (fun (s : Protocol.sequence) -> s.Protocol.seq_type = "q.Iter") seqs

let protomine_reconstructs () =
  let seqs =
    mine_sequences
      {|
      package c;
      class User {
        void use(Src s) {
          Iter it = s.open();
          it.has();
          it.next();
        }
      }
      |}
  in
  match iter_seqs seqs with
  | [ s ] ->
      check_bool "producer is the producing call" true
        (s.Protocol.seq_producer = Protocol.Call "q.Src.open/0");
      check_bool "events in evaluation order" true
        (List.map (fun (e : Protocol.event) -> e.Protocol.ev_meth)
           s.Protocol.seq_events
        = [ "has/0"; "next/0" ]);
      check_bool "statement results marked discarded" true
        (List.for_all
           (fun (e : Protocol.event) -> e.Protocol.ev_discarded)
           s.Protocol.seq_events)
  | ss -> Alcotest.failf "expected one q.Iter sequence, got %d" (List.length ss)

let protomine_cast_producer () =
  let seqs =
    mine_sequences
      {|
      package c;
      class CastUser {
        void use(java.lang.Object o) {
          Iter it = (Iter) o;
          it.has();
        }
      }
      |}
  in
  match iter_seqs seqs with
  | [ s ] ->
      check_bool "cast producer" true (s.Protocol.seq_producer = Protocol.Cast)
  | ss -> Alcotest.failf "expected one q.Iter sequence, got %d" (List.length ss)

let protomine_interprocedural () =
  (* the callee's calls on its parameter splice into the caller's receiver
     stream, and the parameter yields no double-counted standalone sequence *)
  let seqs =
    mine_sequences
      {|
      package c;
      class Caller {
        static void drain(Iter inner) {
          inner.next();
        }
        void run(Src s) {
          Iter it = s.open();
          it.has();
          Caller.drain(it);
        }
      }
      |}
  in
  match iter_seqs seqs with
  | [ s ] ->
      check_bool "spliced events" true
        (List.map (fun (e : Protocol.event) -> e.Protocol.ev_meth)
           s.Protocol.seq_events
        = [ "has/0"; "next/0" ])
  | ss -> Alcotest.failf "expected one q.Iter sequence, got %d" (List.length ss)

(* ---------- qcheck: random Apigen worlds ---------- *)

type world = {
  w_h : Hierarchy.t;
  w_g : Graph.t;
  w_queries : Query.t list;
}

let world_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 20 80 in
    return
      (let h = Corpusgen.Workload.layered_api ~classes in
       let g = Prospector.Sig_graph.build h in
       let qs = Corpusgen.Workload.random_queries h g ~count:3 ~seed in
       { w_h = h; w_g = g; w_queries = qs }))

let prop_solutions_pass_verifier =
  QCheck2.Test.make ~name:"every Query.run solution passes the verifier" ~count:30
    world_gen (fun w ->
      List.for_all
        (fun q ->
          List.for_all
            (fun (r : Query.result) -> Verify.sound w.w_h r.Query.jungloid)
            (Query.run ~graph:w.w_g ~hierarchy:w.w_h q))
        w.w_queries)

let prop_verified_mode_filters_nothing =
  QCheck2.Test.make ~name:"verified mode filters zero solutions" ~count:30 world_gen
    (fun w ->
      List.for_all
        (fun q ->
          let plain = Query.run ~graph:w.w_g ~hierarchy:w.w_h q in
          let v = Query.verifier (Verify.sound w.w_h) in
          let verified = Query.run ~verify:v ~graph:w.w_g ~hierarchy:w.w_h q in
          v.Query.vfiltered = 0
          && List.length plain = List.length verified
          && List.for_all2
               (fun (a : Query.result) (b : Query.result) ->
                 Jungloid.equal a.Query.jungloid b.Query.jungloid)
               plain verified)
        w.w_queries)

let prop_extracted_examples_sound =
  QCheck2.Test.make ~name:"extracted examples pass example_well_typed (verifier)"
    ~count:20
    QCheck2.Gen.(int_range 2 24)
    (fun branches ->
      let h, sources = Corpusgen.Workload.branchy_corpus ~branches in
      let prog = Minijava.Resolve.parse_program ~api:h sources in
      let df = Mining.Dataflow.build prog in
      let exs = Mining.Extract.extract df in
      List.for_all (Mining.Extract.example_well_typed h) exs)

let prop_reaching_defs_refine_producers =
  (* The flow-sensitive prepass may only narrow the flow-insensitive
     answer: every definition reaching a variable use is among that
     variable's producers. *)
  QCheck2.Test.make
    ~name:"flow-sensitive reaching defs are a subset of var_producers"
    ~count:20
    QCheck2.Gen.(int_range 2 24)
    (fun branches ->
      let h, sources = Corpusgen.Workload.branchy_corpus ~branches in
      let prog = Minijava.Resolve.parse_program ~api:h sources in
      let df = Analysis.Dataflow.build ~flow_sensitive:true prog in
      List.for_all
        (fun (m : Tast.tmeth) ->
          let method_key = Tast.method_key m in
          let ok = ref true in
          Tast.iter_exprs m.Tast.body (fun (e : Tast.texpr) ->
              match e.Tast.tdesc with
              | Tast.Tvar v
                when not (Analysis.Dataflow.is_param df ~method_key ~var:v) -> (
                  match Analysis.Dataflow.reaching_defs df e with
                  | None -> ()
                  | Some defs ->
                      let all =
                        Analysis.Dataflow.var_producers df ~method_key ~var:v
                      in
                      if not (List.for_all (fun d -> List.memq d all) defs)
                      then ok := false)
              | _ -> ());
          !ok)
        prog.Tast.methods)

let () =
  Alcotest.run "analysis"
    [
      ( "verify",
        [
          Alcotest.test_case "sound chain" `Quick verify_sound_chain;
          Alcotest.test_case "J001 composition" `Quick verify_j001;
          Alcotest.test_case "J002 member exists" `Quick verify_j002;
          Alcotest.test_case "J003 widening widens" `Quick verify_j003;
          Alcotest.test_case "J004 downcast related" `Quick verify_j004;
          Alcotest.test_case "J005 input slots" `Quick verify_j005;
          Alcotest.test_case "J006 visibility" `Quick verify_j006;
          Alcotest.test_case "J008 instantiability" `Quick verify_j008;
          Alcotest.test_case "J009 opaque owner" `Quick verify_j009;
        ] );
      ( "apilint",
        [
          Alcotest.test_case "hierarchy rules" `Quick apilint_hierarchy_rules;
          Alcotest.test_case "graph rules" `Quick apilint_graph_rules;
          Alcotest.test_case "bundled model clean" `Quick apilint_bundled_model_clean;
        ] );
      ( "corpuslint",
        [
          Alcotest.test_case "C001 use before any def" `Quick corpuslint_c001;
          Alcotest.test_case "C002 use before first def" `Quick corpuslint_c002;
          Alcotest.test_case "C003 dead store" `Quick corpuslint_c003;
          Alcotest.test_case "C004 unused local" `Quick corpuslint_c004;
          Alcotest.test_case "C005/C006 casts" `Quick corpuslint_c005_c006;
          Alcotest.test_case "positions" `Quick corpuslint_positions;
          Alcotest.test_case "bundled corpus clean" `Quick corpuslint_bundled_clean;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "extraction lint gate" `Quick extract_lint_gate;
          Alcotest.test_case "gencheck" `Quick gencheck_rejects_nonsense;
          Alcotest.test_case "table1 solutions verified" `Slow table1_solutions_verified;
          Alcotest.test_case "table1 verified filters zero" `Slow table1_verified_filters_zero;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "learned counts" `Quick protocol_learn_counts;
          Alcotest.test_case "deviance predicates" `Quick protocol_deviance;
          Alcotest.test_case "P codes fire and stay quiet" `Quick protolint_codes;
          Alcotest.test_case "jungloid vetting (J010-J012)" `Quick protolint_vet;
          Alcotest.test_case "miner reconstructs receiver sequences" `Quick
            protomine_reconstructs;
          Alcotest.test_case "miner records cast producers" `Quick
            protomine_cast_producer;
          Alcotest.test_case "miner splices through corpus calls" `Quick
            protomine_interprocedural;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_solutions_pass_verifier;
            prop_verified_mode_filters_nothing;
            prop_extracted_examples_sound;
            prop_reaching_defs_refine_producers;
          ] );
    ]
