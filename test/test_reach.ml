(* The reachability index and the pruned search: Reach.mem must agree with
   the BFS on every pair, and pruning must be invisible in the results —
   the same paths, in the same order, on randomized graphs and on graphs
   enriched with mined edges. *)

module Jtype = Javamodel.Jtype
module Hierarchy = Javamodel.Hierarchy
module Graph = Prospector.Graph
module Search = Prospector.Search
module Reach = Prospector.Reach
module Query = Prospector.Query
module Elem = Prospector.Elem

type world = { w_h : Hierarchy.t; w_g : Graph.t; w_queries : Query.t list }

let make_world ?(locality = 0.0) ~classes ~seed () =
  let params =
    {
      Corpusgen.Apigen.default_params with
      classes;
      seed;
      methods_per_class = 4;
      locality;
    }
  in
  let h = Corpusgen.Apigen.generate params in
  let g = Prospector.Sig_graph.build h in
  let qs = Corpusgen.Workload.random_queries h g ~count:3 ~seed in
  { w_h = h; w_g = g; w_queries = qs }

let world_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 15 60 in
    let* locality = oneofl [ 0.0; 0.9 ] in
    return (make_world ~locality ~classes ~seed ()))

(* ---------- Reach.mem agrees with the BFS ---------- *)

let prop_mem_agrees_with_bfs =
  QCheck2.Test.make ~name:"Reach.mem = (distance to target < infinity)" ~count:25
    world_gen (fun w ->
      let r = Reach.build w.w_g in
      let nodes = Graph.nodes w.w_g in
      List.for_all
        (fun target ->
          let dist = Search.distances_to w.w_g ~target in
          List.for_all
            (fun src ->
              Reach.mem r ~src ~target = (dist.(src) < max_int))
            nodes)
        (* every target would be O(n^2) BFS runs; a deterministic slice of
           targets keeps the test fast while still covering hubs and
           leaves *)
        (List.filteri (fun i _ -> i mod 7 = 0) nodes))

let prop_cone_size_counts_bfs =
  QCheck2.Test.make ~name:"cone_size counts exactly the backward-reachable set"
    ~count:25 world_gen (fun w ->
      let r = Reach.build w.w_g in
      List.for_all
        (fun target ->
          let dist = Search.distances_to w.w_g ~target in
          let by_bfs =
            List.length
              (List.filter (fun n -> dist.(n) < max_int) (Graph.nodes w.w_g))
          in
          Reach.cone_size r ~target = by_bfs)
        (List.filteri (fun i _ -> i mod 11 = 0) (Graph.nodes w.w_g)))

(* ---------- pruning is invisible in search results ---------- *)

let search_pair_equal w ~src ~dst r =
  let viable = Reach.viable r ~target:dst in
  let plain =
    Search.enumerate w.w_g ~sources:[ src ] ~target:dst ~slack:1 ~limit:100_000 ()
  in
  let pruned =
    Search.enumerate w.w_g ~sources:[ src ] ~target:dst ~slack:1 ~limit:100_000
      ~viable ()
  in
  plain = pruned
  && Search.shortest_cost w.w_g ~sources:[ src ] ~target:dst
     = Search.shortest_cost w.w_g ~sources:[ src ] ~target:dst ~viable
  && Search.enumerate_per_source w.w_g ~sources:[ src; Graph.void_node w.w_g ]
       ~target:dst ~slack:1 ~limit:100_000 ()
     = Search.enumerate_per_source w.w_g ~sources:[ src; Graph.void_node w.w_g ]
         ~target:dst ~slack:1 ~limit:100_000 ~viable ()

let prop_pruned_search_identical =
  QCheck2.Test.make
    ~name:"pruned enumerate/shortest_cost return identical ordered results"
    ~count:30 world_gen (fun w ->
      let r = Reach.build w.w_g in
      List.for_all
        (fun (q : Query.t) ->
          match
            ( Graph.find_type_node w.w_g q.Query.tin,
              Graph.find_type_node w.w_g q.Query.tout )
          with
          | Some src, Some dst -> search_pair_equal w ~src ~dst r
          | _ -> true)
        w.w_queries)

let prop_pruned_query_identical =
  QCheck2.Test.make ~name:"Query.run ~reach equals Query.run, rank and order"
    ~count:30 world_gen (fun w ->
      let r = Reach.build w.w_g in
      List.for_all
        (fun q ->
          Query.run ~graph:w.w_g ~hierarchy:w.w_h q
          = Query.run ~reach:r ~graph:w.w_g ~hierarchy:w.w_h q)
        w.w_queries)

(* The same equivalence on a graph enriched with mined downcast edges — the
   index is rebuilt after enrichment, exactly as the engine does. *)
let prop_pruned_identical_after_enrich =
  QCheck2.Test.make ~name:"pruned = unpruned on an enriched graph" ~count:15
    QCheck2.Gen.(
      let* api_seed = int_range 1 500 in
      let* corpus_seed = int_range 1 500 in
      let* classes = int_range 15 40 in
      return
        (let h =
           Corpusgen.Apigen.generate
             { Corpusgen.Apigen.default_params with classes; seed = api_seed }
         in
         let corpus =
           Corpusgen.Progen.generate h
             { Corpusgen.Progen.default_params with seed = corpus_seed }
         in
         (h, corpus, corpus_seed)))
    (fun (h, corpus, seed) ->
      let g = Prospector.Sig_graph.build h in
      let prog = Minijava.Resolve.parse_program ~api:h corpus in
      let _ = Mining.Enrich.enrich g prog in
      let r = Reach.build g in
      let qs = Corpusgen.Workload.random_queries h g ~count:3 ~seed in
      Reach.generation r = Graph.generation g
      && List.for_all
           (fun q ->
             Query.run ~graph:g ~hierarchy:h q
             = Query.run ~reach:r ~graph:g ~hierarchy:h q)
           qs)

(* ---------- units: a tiny hand-made world ---------- *)

let chain_world () =
  let h =
    Japi.Loader.load_string ~file:"chain"
      {|
      package t;
      class A { B toB(); }
      class B { C toC(); }
      class C { }
      class Island { }
      |}
  in
  let g = Prospector.Sig_graph.build h in
  let node name = Option.get (Graph.find_type_node g (Jtype.ref_of_string ("t." ^ name))) in
  (g, node)

let test_chain_reachability () =
  let g, node = chain_world () in
  let r = Reach.build g in
  let a = node "A" and b = node "B" and c = node "C" and isl = node "Island" in
  Alcotest.(check bool) "A reaches C" true (Reach.mem r ~src:a ~target:c);
  Alcotest.(check bool) "C does not reach A" false (Reach.mem r ~src:c ~target:a);
  Alcotest.(check bool) "Island reaches nothing" false (Reach.mem r ~src:isl ~target:c);
  Alcotest.(check bool) "B reaches C" true (Reach.mem r ~src:b ~target:c);
  Alcotest.(check bool) "self-reachable" true (Reach.mem r ~src:c ~target:c);
  Alcotest.(check bool) "cone of C contains A, B, C" true
    (Reach.cone_size r ~target:c >= 3)

let test_generation_tracks_graph () =
  let g, node = chain_world () in
  let r = Reach.build g in
  Alcotest.(check int) "index stamped with the build generation"
    (Graph.generation g) (Reach.generation r);
  let isl = node "Island" and c = node "C" in
  Graph.add_edge g ~src:isl
    (Elem.Widen
       { from_ = Graph.node_type g isl; to_ = Graph.node_type g c })
    ~dst:c;
  Alcotest.(check bool) "mutation moves the graph generation" true
    (Graph.generation g > Reach.generation r);
  (* the stale index still answers from its snapshot *)
  Alcotest.(check bool) "stale index keeps its snapshot" false
    (Reach.mem r ~src:isl ~target:c);
  let r2 = Reach.build g in
  Alcotest.(check bool) "rebuilt index sees the new edge" true
    (Reach.mem r2 ~src:isl ~target:c)

let test_out_of_range_conservative () =
  let g, node = chain_world () in
  let r = Reach.build g in
  let fresh = Graph.ensure_type_node g (Jtype.ref_of_string "t.Later") in
  let c = node "C" in
  Alcotest.(check bool) "node created after the build is reported reachable"
    true
    (Reach.mem r ~src:fresh ~target:c && Reach.mem r ~src:c ~target:fresh)

let test_dump_roundtrip () =
  let w = make_world ~classes:30 ~seed:7 () in
  let r = Reach.build w.w_g in
  let r' = Reach.undump (Reach.dump r) in
  Alcotest.(check int) "generation survives" (Reach.generation r)
    (Reach.generation r');
  Alcotest.(check int) "scc count survives" (Reach.scc_count r)
    (Reach.scc_count r');
  let nodes = Graph.nodes w.w_g in
  List.iter
    (fun target ->
      List.iter
        (fun src ->
          Alcotest.(check bool)
            (Printf.sprintf "mem %d->%d survives" src target)
            (Reach.mem r ~src ~target)
            (Reach.mem r' ~src ~target))
        nodes)
    (List.filteri (fun i _ -> i mod 13 = 0) nodes)

let test_serialize_reach_roundtrip () =
  let w = make_world ~classes:25 ~seed:11 () in
  let r = Reach.build w.w_g in
  let r' = Prospector.Serialize.reach_of_bytes (Prospector.Serialize.reach_to_bytes r) in
  Alcotest.(check int) "node count survives" (Reach.node_count r)
    (Reach.node_count r');
  Alcotest.check
    (Alcotest.testable
       (fun fmt e -> Format.pp_print_string fmt (Printexc.to_string e))
       (fun _ _ -> true))
    "corrupt bytes rejected"
    (Prospector.Serialize.Format_error "")
    (try
       ignore (Prospector.Serialize.reach_of_bytes (Bytes.of_string "garbage"));
       failwith "expected Format_error"
     with Prospector.Serialize.Format_error _ as e -> e)

let () =
  Alcotest.run "reach"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mem_agrees_with_bfs;
            prop_cone_size_counts_bfs;
            prop_pruned_search_identical;
            prop_pruned_query_identical;
            prop_pruned_identical_after_enrich;
          ] );
      ( "units",
        [
          Alcotest.test_case "chain reachability" `Quick test_chain_reachability;
          Alcotest.test_case "generation tracking" `Quick test_generation_tracks_graph;
          Alcotest.test_case "out-of-range conservative" `Quick
            test_out_of_range_conservative;
          Alcotest.test_case "dump roundtrip" `Quick test_dump_roundtrip;
          Alcotest.test_case "serialized index roundtrip" `Quick
            test_serialize_reach_roundtrip;
        ] );
    ]
