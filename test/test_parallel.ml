(* The domain-parallel engine must be invisible in the answers: this suite
   pins Pool's scheduling contract (ordering, nesting, exceptions), the
   Graph.freeze CSR round-trip (qcheck, over random synthetic APIs), and
   byte-identical results at jobs = 1 vs jobs = 4 for queries, batches, and
   corpus mining. The CSR search kernels themselves are covered
   transitively: [Query.run ~frozen] answers every query here over the
   frozen view and is compared against the adjacency-list path. *)

module Jtype = Javamodel.Jtype
module Graph = Prospector.Graph
module Query = Prospector.Query
module Stats = Prospector.Stats
module Pool = Prospector_parallel.Pool
module Proto = Prospector_server.Proto
module Service = Prospector_server.Service
module Problems = Apidata.Problems

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------- the pool's scheduling contract ---------- *)

let test_pool_create_rejects () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0))

let test_pool_map_order () =
  let input = List.init 317 (fun i -> i) in
  let expected = List.map (fun i -> i * i) input in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      check_bool
        (Printf.sprintf "map_list order at jobs = %d" jobs)
        true
        (Pool.map_list pool (fun i -> i * i) input = expected);
      check_bool
        (Printf.sprintf "map_array order at jobs = %d" jobs)
        true
        (Pool.map_array pool (fun i -> i * i) (Array.of_list input)
        = Array.of_list expected))
    [ 1; 2; 4; 7 ]

let test_pool_for_covers_every_index () =
  let n = 1000 in
  let hits = Array.make n 0 in
  (* disjoint index-addressed writes, the documented contract *)
  Pool.parallel_for (Pool.create ~jobs:4) ~n (fun i -> hits.(i) <- hits.(i) + 1);
  check_bool "each index exactly once" true (Array.for_all (( = ) 1) hits)

let test_pool_empty_and_tiny () =
  let pool = Pool.create ~jobs:4 in
  check_bool "empty list" true (Pool.map_list pool succ [] = []);
  check_bool "singleton" true (Pool.map_list pool succ [ 41 ] = [ 42 ]);
  Pool.parallel_for pool ~n:0 (fun _ -> Alcotest.fail "body ran for n = 0")

exception Boom of int

let test_pool_reraises () =
  List.iter
    (fun jobs ->
      let raised =
        try
          Pool.parallel_for (Pool.create ~jobs) ~n:64 (fun i ->
              if i mod 13 = 5 then raise (Boom i));
          false
        with Boom _ -> true
      in
      check_bool (Printf.sprintf "exception escapes at jobs = %d" jobs) true raised)
    [ 1; 4 ]

let test_pool_nested_fanout_inlines () =
  (* a worker fanning out on the same pool must not deadlock; it runs the
     inner call inline *)
  let pool = Pool.create ~jobs:4 in
  let got =
    Pool.map_list pool
      (fun i -> List.fold_left ( + ) i (Pool.map_list pool succ [ 1; 2; 3 ]))
      (List.init 32 (fun i -> i))
  in
  check_bool "nested totals" true (got = List.init 32 (fun i -> i + 9))

(* ---------- qcheck: freeze round-trips the graph ---------- *)

let world_gen =
  QCheck2.Gen.(
    let* seed = int_range 1 10_000 in
    let* classes = int_range 20 80 in
    return
      (let params =
         { Corpusgen.Apigen.default_params with classes; seed; methods_per_class = 4 }
       in
       let h = Corpusgen.Apigen.generate params in
       (h, Prospector.Sig_graph.build h)))

let prop_freeze_roundtrip =
  QCheck2.Test.make ~name:"freeze preserves nodes, edges, and adjacency order"
    ~count:40 world_gen (fun (_, g) ->
      let fz = Graph.freeze g in
      Graph.frozen_generation fz = Graph.generation g
      && Graph.frozen_node_count fz = Graph.node_count g
      && Graph.frozen_edge_count fz = Graph.edge_count g
      && Graph.frozen_void_node fz = Graph.find_type_node g Jtype.Void
      && List.for_all
           (fun n ->
             Jtype.equal (Graph.frozen_node_type fz n) (Graph.node_type g n)
             && Graph.frozen_is_typestate fz n = Graph.is_typestate g n
             && Graph.frozen_succs fz n = Graph.succs g n)
           (Graph.nodes g)
      && List.for_all
           (fun (ty, n) -> Graph.frozen_find_type_node fz ty = Some n)
           (Graph.real_nodes g))

let prop_frozen_run_equals_live =
  QCheck2.Test.make ~name:"Query.run ~frozen = Query.run" ~count:25 world_gen
    (fun (h, g) ->
      let frozen = Graph.freeze g in
      List.for_all
        (fun q ->
          let live = Query.run ~graph:g ~hierarchy:h q in
          let frz = Query.run ~frozen ~graph:g ~hierarchy:h q in
          List.length live = List.length frz
          && List.for_all2
               (fun (a : Query.result) (b : Query.result) ->
                 Prospector.Jungloid.equal a.Query.jungloid b.Query.jungloid
                 && Prospector.Rank.compare_key a.Query.key b.Query.key = 0
                 && a.Query.code = b.Query.code)
               live frz)
        (Corpusgen.Workload.random_queries h g ~count:3 ~seed:7))

(* ---------- byte-identical answers at any job count ---------- *)

let workload () =
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let qs =
    List.map
      (fun (p : Problems.t) -> Query.query p.Problems.tin p.Problems.tout)
      Problems.all
  in
  (graph, hierarchy, qs)

let check_results_equal name (a : Query.result list) (b : Query.result list) =
  check_int (name ^ ": result count") (List.length a) (List.length b);
  List.iteri
    (fun i (x, y) ->
      let n = Printf.sprintf "%s: result %d" name i in
      check_bool
        (n ^ " jungloid")
        true
        (Prospector.Jungloid.equal x.Query.jungloid y.Query.jungloid);
      check_bool
        (n ^ " rank key")
        true
        (Prospector.Rank.compare_key x.Query.key y.Query.key = 0);
      check_string (n ^ " code") x.Query.code y.Query.code)
    (List.combine a b)

let test_batch_deterministic () =
  let graph, hierarchy, qs = workload () in
  (* duplicates exercise the cache-replay phase: the second occurrence must
     be a hit in both runs *)
  let qs = qs @ qs in
  let seq_engine = Query.engine ~graph ~hierarchy () in
  let par_engine = Query.engine ~pool:(Pool.create ~jobs:4) ~graph ~hierarchy () in
  let seq = Query.run_batch seq_engine qs in
  let par = Query.run_batch par_engine qs in
  check_int "same batch length" (List.length seq) (List.length par);
  List.iter2
    (fun ((qa : Query.t), ra) ((qb : Query.t), rb) ->
      check_bool "same query order" true (qa == qb);
      check_results_equal (Jtype.to_string qa.Query.tout) ra rb)
    seq par;
  (* the replay protocol also reproduces the exact cache accounting *)
  check_string "same cache stats"
    (Stats.cache_to_string (Query.engine_stats seq_engine))
    (Stats.cache_to_string (Query.engine_stats par_engine))

let test_mining_deterministic () =
  let hierarchy = Apidata.Api.hierarchy () in
  let prog =
    Minijava.Resolve.parse_program ~api:hierarchy Apidata.Api.corpus_sources
  in
  let df = Mining.Dataflow.build prog in
  let seq = Mining.Extract.extract df in
  let par = Mining.Extract.extract ~pool:(Pool.create ~jobs:4) df in
  check_bool "corpus has examples" true (seq <> []);
  check_bool "mining output identical at jobs = 4" true (seq = par)

(* ---------- the service republishes its snapshot after mutation ---------- *)

let stats_nodes line =
  match Proto.of_string line with
  | Proto.Obj _ as j -> (
      match Proto.member "graph" j with
      | Some g -> (
          match Proto.member "nodes" g with
          | Some (Proto.Int n) -> n
          | _ -> Alcotest.fail "stats without graph.nodes")
      | None -> Alcotest.fail ("stats without graph in: " ^ line))
  | _ -> Alcotest.fail "unparseable stats reply"

let test_service_snapshot_republish () =
  let graph, hierarchy, _ = workload () in
  let svc = Service.create ~engine:(Query.engine ~graph ~hierarchy ()) () in
  let local = Service.local svc in
  let before = stats_nodes (Service.handle_line ~local svc "{\"op\": \"stats\"}") in
  check_int "snapshot sees the full graph" (Graph.node_count graph) before;
  (* grow the live graph: the next request must observe a fresh snapshot *)
  ignore (Graph.ensure_type_node graph (Jtype.ref_of_string "brand.New"));
  let after = stats_nodes (Service.handle_line ~local svc "{\"op\": \"stats\"}") in
  check_int "republished after generation bump" (before + 1) after

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "create rejects jobs < 1" `Quick test_pool_create_rejects;
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "parallel_for covers every index" `Quick
            test_pool_for_covers_every_index;
          Alcotest.test_case "empty and tiny inputs" `Quick test_pool_empty_and_tiny;
          Alcotest.test_case "exceptions re-raised" `Quick test_pool_reraises;
          Alcotest.test_case "nested fan-out runs inline" `Quick
            test_pool_nested_fanout_inlines;
        ] );
      ( "freeze",
        List.map QCheck_alcotest.to_alcotest
          [ prop_freeze_roundtrip; prop_frozen_run_equals_live ] );
      ( "determinism",
        [
          Alcotest.test_case "batch: jobs 4 = jobs 1" `Quick test_batch_deterministic;
          Alcotest.test_case "mining: jobs 4 = jobs 1" `Quick
            test_mining_deterministic;
        ] );
      ( "service",
        [
          Alcotest.test_case "snapshot republish on mutation" `Quick
            test_service_snapshot_republish;
        ] );
    ]
