// The Table 1 row 4 idiom as a client method: from an open editor to the
// file it edits. `make lint` runs the corpus linter over this file against
// the bundled Eclipse/J2SE model; it must stay clean.
package examples.editor;

class EditorFileReader {
  IFile fileOfEditor(IEditorPart editor) {
    IFileEditorInput input = (IFileEditorInput) editor.getEditorInput();
    IFile file = input.getFile();
    return file;
  }
}
