// The Section 1 parsing chain written out by hand: IFile -> ICompilationUnit
// -> CompilationUnit. Linted by `make lint` against the bundled model.
package examples.ast;

class CompilationUnitParser {
  CompilationUnit parse(IFile file) {
    ICompilationUnit unit = JavaCore.createCompilationUnitFrom(file);
    CompilationUnit ast = AST.parseCompilationUnit(unit, false);
    return ast;
  }
}
