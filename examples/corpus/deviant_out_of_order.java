// Deliberately PROTOCOL-DEVIANT client: calls the Enumeration pair in the
// wrong order (nextElement before hasMoreElements). `make lint` runs
// `lint --pass proto` over this file against the bundled mined model and
// expects it to be flagged (P001: the corpus never calls hasMoreElements
// directly after nextElement). Keep this file out of the clean-corpus lint
// invocations.
package examples.deviant;

class BackwardsDrainer {
  Object takeThenProbe(ZipFile zip) {
    Enumeration en = zip.entries();
    Object entry = en.nextElement();
    en.hasMoreElements();
    return entry;
  }
}
