// Deliberately PROTOCOL-DEVIANT client: probes hasMoreElements but never
// consumes with nextElement. In every corpus sequence hasMoreElements is
// followed by another call on the same receiver, so ending the object's
// life here is flagged (P002: must-follow violation). Keep this file out
// of the clean-corpus lint invocations.
package examples.deviant;

class ProbeOnly {
  void probe(ZipFile zip) {
    Enumeration en = zip.entries();
    en.hasMoreElements();
  }
}
