(* The PROSPECTOR command-line tool: a programmer's search engine for API
   jungloids (the paper packaged the same engine inside Eclipse content
   assist). Subcommands:

     query TIN TOUT      synthesize jungloids for a (tin, tout) query
     assist TOUT         content-assist: suggest code for an expected type
     mine                show mining statistics and generalized examples
     stats               graph statistics (signature vs jungloid graph)
     dot                 export a neighborhood of the graph as Graphviz
     table1              reproduce the paper's Table 1
     study               reproduce the paper's Figure 8 user study

   By default everything runs against the bundled Eclipse 2.1 / J2SE model
   and corpus; --api / --corpus load your own .japi and mini-Java files. *)

open Cmdliner

(* ---------- shared options ---------- *)

let api_files =
  Arg.(
    value & opt_all file []
    & info [ "api" ] ~docv:"FILE"
        ~doc:"Load API signatures from this .japi file (repeatable). When \
              absent, the bundled Eclipse/J2SE model is used.")

let corpus_files =
  Arg.(
    value & opt_all file []
    & info [ "corpus" ] ~docv:"FILE"
        ~doc:"Load mining corpus from this mini-Java file (repeatable). \
              When absent (and no --api), the bundled corpus is used.")

let no_mining =
  Arg.(
    value & flag
    & info [ "no-mining" ] ~doc:"Use the signature graph only (Section 3).")

let protected_flag =
  Arg.(
    value & flag
    & info [ "protected" ]
        ~doc:"Admit protected members (the paper's proposed extension).")

let max_results =
  Arg.(
    value & opt int 10
    & info
        [ "max-results"; "n"; "top" ]
        ~docv:"N" ~doc:"Result list length (the k of the top-k search).")

let slack =
  Arg.(
    value & opt int 1
    & info [ "slack" ] ~docv:"K"
        ~doc:"Enumerate paths of cost up to shortest+K (the paper uses 1).")

let verbose_flag =
  Arg.(
    value & flag
    & info [ "verbose" ] ~doc:"Log loading, mining, and query internals to stderr.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Fan work out across N domains (batch answering, corpus mining,               reach-index construction). Results are byte-identical at any               N; 1 (the default) stays fully sequential.")

(* Validated exactly like --workers / --cache-capacity: a friendly one-line
   error and exit 1, never an exception trace. *)
let pool_of_jobs jobs =
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be at least 1 (got %d)\n" jobs;
    exit 1
  end;
  Prospector_parallel.Pool.create ~jobs

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type env = {
  hierarchy : Javamodel.Hierarchy.t;
  graph : Prospector.Graph.t;
  usage : Mining.Usage.t option;
      (* mined usage model, present whenever corpus mining ran *)
  proto : Analysis.Protocol.model option;
      (* mined typestate model, present whenever corpus mining ran *)
}

let load_env ?pool ~api ~corpus ~mining ~protected_ () =
  let config =
    { Prospector.Sig_graph.default_config with include_protected = protected_ }
  in
  let hierarchy =
    match api with
    | [] -> Apidata.Api.hierarchy ()
    | files -> Japi.Loader.load_files (List.map (fun f -> (f, read_file f)) files)
  in
  let graph = Prospector.Sig_graph.build ~config hierarchy in
  let corpus_sources =
    match (api, corpus) with
    | [], [] -> Apidata.Api.corpus_sources
    | _, files -> List.map (fun f -> (f, read_file f)) files
  in
  let usage = ref None in
  let proto = ref None in
  if mining && corpus_sources <> [] then begin
    let prog = Minijava.Resolve.parse_program ~api:hierarchy corpus_sources in
    ignore
      (Mining.Enrich.enrich ~include_protected:protected_ ?pool
         ~on_examples:(fun exs -> usage := Some (Mining.Usage.of_examples exs))
         graph prog);
    proto := Some (Mining.Protomine.mine prog)
  end;
  { hierarchy; graph; usage = !usage; proto = !proto }

let strategy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:"Search strategy: $(b,best-first) (the default: rank-ordered \
              best-first top-k, stops once the top results are certified) or \
              $(b,exhaustive) (enumerate every within-budget path, the \
              equivalence oracle). Output is byte-identical either way.")

(* Validated like --jobs: a friendly one-line error and exit 1. *)
let parse_strategy = function
  | None -> None
  | Some s -> (
      match Prospector.Query.strategy_of_string s with
      | Ok st -> Some st
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)

let ranking_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ranking" ] ~docv:"NAME"
        ~doc:"Result order: $(b,paper) (the default: Section 3.2's static \
              length/crossings/specificity rule) or $(b,mined) (usage-weighted \
              probabilistic order learned from the corpus; falls back to \
              $(b,paper) with a warning when no corpus was mined). The \
              candidate set is identical either way — only the order changes.")

let parse_ranking = function
  | None -> None
  | Some s -> (
      match Prospector.Query.ranking_of_string s with
      | Ok r -> Some r
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)

let protocol_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "protocol" ] ~docv:"MODE"
        ~doc:"Mined-typestate checking of synthesized jungloids: $(b,off) \
              (the default), $(b,warn) (results unchanged; call-order \
              violations against the mined automata are reported as \
              warnings) or $(b,filter) (violating jungloids are dropped \
              from the results). Falls back to $(b,off) with a warning when \
              no corpus was mined.")

let parse_protocol = function
  | None -> None
  | Some s -> (
      match Prospector.Query.protocol_of_string s with
      | Ok p -> Some p
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)

let settings ~max_results ~slack ~strategy ~ranking ~protocol =
  let base = Prospector.Query.default_settings in
  {
    base with
    Prospector.Query.max_results;
    slack;
    strategy =
      Option.value (parse_strategy strategy)
        ~default:base.Prospector.Query.strategy;
    ranking =
      Option.value (parse_ranking ranking)
        ~default:base.Prospector.Query.ranking;
    protocol =
      Option.value (parse_protocol protocol)
        ~default:base.Prospector.Query.protocol;
  }

(* The usage model as the [?edge_cost] the query layer consumes; [None]
   (mining disabled, or a warm start without corpus sources) makes [Mined]
   requests fall back to [Paper] with a logged warning (the query layer
   reports configuration fallbacks at warning level, which the CLI shows
   by default). *)
let edge_cost_of env = Option.map Mining.Usage.edge_cost env.usage

(* The mined typestate model as the [?protocol_check] the query layer
   consumes; [None] makes [Warn]/[Filter] requests fall back to [Off] with
   the same logged-warning discipline as [Mined] ranking. *)
let protocol_check_of env =
  Option.map (fun m j -> Analysis.Protolint.violations m j) env.proto

let handle_errors f =
  try f () with
  | Japi.Error.E e ->
      Printf.eprintf "error: %s\n" (Japi.Error.to_string e);
      exit 1
  | Javamodel.Hierarchy.Unknown_type q ->
      Printf.eprintf "error: unknown type %s\n" (Javamodel.Qname.to_string q);
      exit 1

(* ---------- query ---------- *)

let print_result i (r : Prospector.Query.result) =
  Printf.printf "#%d  %s\n" (i + 1)
    (Prospector.Jungloid.to_string r.Prospector.Query.jungloid);
  let code = String.trim r.Prospector.Query.code in
  String.split_on_char '\n' code
  |> List.iter (fun line -> Printf.printf "      %s\n" line)

let query_cmd =
  let tin = Arg.(required & pos 0 (some string) None & info [] ~docv:"TIN") in
  let tout = Arg.(required & pos 1 (some string) None & info [] ~docv:"TOUT") in
  let cluster_flag =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:"Group similar jungloids (same type path) and show one \
                representative per group.")
  in
  let run api corpus no_mining protected_ max_results slack strategy ranking
      protocol cluster verbose tin tout =
    setup_logs verbose;
    handle_errors (fun () ->
        let env =
          load_env ~api ~corpus ~mining:(not no_mining) ~protected_ ()
        in
        let q = Prospector.Query.query tin tout in
        let st = settings ~max_results ~slack ~strategy ~ranking ~protocol in
        let results, info =
          Prospector.Query.run_info ~settings:st ?edge_cost:(edge_cost_of env)
            ?protocol_check:(protocol_check_of env) ~graph:env.graph
            ~hierarchy:env.hierarchy q
        in
        if info.Prospector.Query.truncated then
          Printf.eprintf
            "warning: search stopped at the %d-path limit; better-ranked \
             solutions may be missing\n"
            st.Prospector.Query.limit;
        if results = [] then print_endline "no jungloids found"
        else if cluster then
          List.iteri
            (fun i (c : Prospector.Query.cluster) ->
              Printf.printf "#%d  [%d similar]  via %s\n" (i + 1)
                c.Prospector.Query.members c.Prospector.Query.type_path;
              print_result i c.Prospector.Query.representative)
            (Prospector.Query.cluster results)
        else List.iteri print_result results)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Synthesize jungloids for a (tin, tout) query.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ strategy_arg $ ranking_arg $ protocol_arg
      $ cluster_flag $ verbose_flag $ tin $ tout)

(* ---------- assist ---------- *)

let assist_cmd =
  let tout = Arg.(required & pos 0 (some string) None & info [] ~docv:"TOUT") in
  let vars =
    Arg.(
      value & opt_all string []
      & info [ "var"; "v" ] ~docv:"NAME:TYPE"
          ~doc:"A visible variable, e.g. $(b,ep:org.eclipse.ui.IEditorPart) \
                (repeatable).")
  in
  let run api corpus no_mining protected_ max_results slack strategy ranking
      protocol vars tout =
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ () in
        let parsed_vars =
          List.map
            (fun s ->
              match String.index_opt s ':' with
              | Some i ->
                  ( String.sub s 0 i,
                    Javamodel.Jtype.ref_of_string
                      (String.sub s (i + 1) (String.length s - i - 1)) )
              | None -> failwith (Printf.sprintf "bad --var %S, expected NAME:TYPE" s))
            vars
        in
        let ctx =
          {
            Prospector.Assist.vars = parsed_vars;
            expected = Javamodel.Jtype.ref_of_string tout;
          }
        in
        let suggestions =
          Prospector.Assist.suggest
            ~settings:(settings ~max_results ~slack ~strategy ~ranking ~protocol)
            ?edge_cost:(edge_cost_of env)
            ?protocol_check:(protocol_check_of env) ~graph:env.graph
            ~hierarchy:env.hierarchy ctx
        in
        if suggestions = [] then print_endline "no suggestions"
        else
          List.iteri
            (fun i (s : Prospector.Assist.suggestion) ->
              Printf.printf "#%d  %s%s\n" (i + 1) s.Prospector.Assist.title
                (match s.Prospector.Assist.uses_var with
                | Some v -> Printf.sprintf "   (uses %s)" v
                | None -> ""))
            suggestions)
  in
  Cmd.v
    (Cmd.info "assist" ~doc:"Content assist: suggestions for an expected type.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ strategy_arg $ ranking_arg $ protocol_arg $ vars
      $ tout)

(* ---------- refine ---------- *)

(* Spec-by-example disambiguation over a ranked result list, run locally
   (no daemon): synthesize the candidates exactly like query/assist would,
   then loop Probe questions until the session converges. --auto answers
   every probe the way Simstudy's programmer does (follow the branch that
   keeps the rank-1 result) — the deterministic transcript the docs and
   cram tests pin. *)

module Esession = Prospector_eval.Session
module Eprobe = Prospector_eval.Probe
module Evalue = Prospector_eval.Value

let print_refine_question n (q : Eprobe.question) =
  Printf.printf "question %d:\n" n;
  List.iter
    (fun (k, v) -> Printf.printf "  given %s = %s\n" k (Evalue.to_string v))
    q.Eprobe.env;
  print_endline "  which output do you expect?";
  List.iteri
    (fun i (g : Eprobe.group) ->
      let what =
        match g.Eprobe.answer with
        | Eprobe.Output s -> s
        | Eprobe.Unknown -> "(can't tell)"
      in
      Printf.printf "    [%d] %s   (%d candidate%s)\n" i what
        (List.length g.Eprobe.members)
        (if List.length g.Eprobe.members = 1 then "" else "s"))
    q.Eprobe.groups

let print_refine_result st =
  let best = Esession.best st in
  let live = List.length (Esession.live st) in
  let asked = Esession.questions_asked st in
  if live = 1 then
    Printf.printf "converged after %d question%s: result #%d of the ranked list\n"
      asked
      (if asked = 1 then "" else "s")
      (Esession.best_rank st + 1)
  else
    Printf.printf
      "no probe can split the remaining %d candidates; rank order decides: \
       result #%d\n"
      live
      (Esession.best_rank st + 1);
  (match best.Esession.source with
  | Some v -> Printf.printf "(uses %s)\n" v
  | None -> ());
  Printf.printf "%s\n" (Prospector.Jungloid.to_string best.Esession.result.Prospector.Query.jungloid);
  String.trim best.Esession.result.Prospector.Query.code
  |> String.split_on_char '\n'
  |> List.iter (fun line -> Printf.printf "  %s\n" line)

let refine_cmd =
  let argv =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:"Either $(b,TIN TOUT) (query-shaped) or $(b,TOUT) with \
                $(b,--var) bindings (assist-shaped).")
  in
  let vars =
    Arg.(
      value & opt_all string []
      & info [ "var"; "v" ] ~docv:"NAME:TYPE"
          ~doc:"A visible variable for the assist-shaped session (repeatable).")
  in
  let auto_flag =
    Arg.(
      value & flag
      & info [ "auto" ]
          ~doc:"Answer every probe automatically, following the branch that \
                keeps the rank-1 result (deterministic; what the simulated \
                study programmer does). Without it, answers are read from \
                stdin.")
  in
  let run api corpus no_mining protected_ max_results slack strategy ranking
      protocol verbose vars auto argv =
    setup_logs verbose;
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ () in
        let st = settings ~max_results ~slack ~strategy ~ranking ~protocol in
        let candidates =
          match (argv, vars) with
          | [ tin; tout ], [] ->
              let q = Prospector.Query.query tin tout in
              Prospector.Query.run ~settings:st ?edge_cost:(edge_cost_of env)
                ?protocol_check:(protocol_check_of env) ~graph:env.graph
                ~hierarchy:env.hierarchy q
              |> List.map (fun result -> { Esession.source = None; result })
          | [ tout ], _ :: _ ->
              let parsed_vars =
                List.map
                  (fun s ->
                    match String.index_opt s ':' with
                    | Some i ->
                        ( String.sub s 0 i,
                          Javamodel.Jtype.ref_of_string
                            (String.sub s (i + 1) (String.length s - i - 1)) )
                    | None ->
                        Printf.eprintf "error: bad --var %S, expected NAME:TYPE\n" s;
                        exit 2)
                  vars
              in
              let ctx =
                {
                  Prospector.Assist.vars = parsed_vars;
                  expected = Javamodel.Jtype.ref_of_string tout;
                }
              in
              Prospector.Assist.suggest ~settings:st
                ?edge_cost:(edge_cost_of env)
                ?protocol_check:(protocol_check_of env) ~graph:env.graph
                ~hierarchy:env.hierarchy ctx
              |> List.map (fun (s : Prospector.Assist.suggestion) ->
                     {
                       Esession.source = s.Prospector.Assist.uses_var;
                       result = s.Prospector.Assist.result;
                     })
          | _ ->
              Printf.eprintf
                "error: expected either TIN TOUT, or TOUT with --var bindings\n";
              exit 2
        in
        if candidates = [] then begin
          print_endline "no jungloids found";
          exit 0
        end;
        Printf.printf "%d candidate%s\n"
          (List.length candidates)
          (if List.length candidates = 1 then "" else "s");
        let desired = (List.hd candidates).Esession.result in
        let rec loop sess =
          match Esession.question sess with
          | None -> print_refine_result sess
          | Some q ->
              print_refine_question (Esession.questions_asked sess + 1) q;
              let choice =
                if auto then begin
                  match Simstudy.Programmer.answer_probe sess ~desired with
                  | Some c ->
                      Printf.printf "  answer: %d\n" c;
                      Some c
                  | None -> None
                end
                else begin
                  Printf.printf "  answer [0-%d]: %!"
                    (List.length q.Eprobe.groups - 1);
                  match input_line stdin with
                  | exception End_of_file ->
                      print_endline "";
                      None
                  | line -> (
                      match int_of_string_opt (String.trim line) with
                      | Some c -> Some c
                      | None ->
                          print_endline "  (not a number; session stopped)";
                          None)
                end
              in
              (match choice with
              | None -> print_refine_result sess
              | Some c -> (
                  match Esession.answer sess ~choice:c with
                  | Ok sess' -> loop sess'
                  | Error `Bad_choice ->
                      Printf.printf "  choice %d is out of range\n" c;
                      loop sess
                  | Error `No_question -> print_refine_result sess))
        in
        loop (Esession.start candidates))
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Disambiguate a ranked result list by answering \"Twenty \
             Questions\" probes on concrete inputs.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ strategy_arg $ ranking_arg $ protocol_arg
      $ verbose_flag $ vars $ auto_flag $ argv)

(* ---------- batch ---------- *)

(* Server-style operation: answer a whole file of queries through one
   Query.engine, so the reachability index is built once and repeated
   queries are LRU cache hits. The paper's engine answered one interactive
   query at a time; this is the entry point for heavy query traffic. *)

let parse_query_file path =
  read_file path |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | Some i ->
               let tin = String.sub line 0 i in
               let tout =
                 String.trim (String.sub line (i + 1) (String.length line - i - 1))
               in
               Some (Prospector.Query.query tin tout)
           | None ->
               Printf.eprintf "error: bad query line %S, expected \"TIN TOUT\"\n" line;
               exit 1)

let batch_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"QUERIES"
          ~doc:"Query file: one $(b,TIN TOUT) pair per line; blank lines and \
                $(b,#) comments are skipped.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Run the whole batch N times (passes after the first exercise \
                the warm cache).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Bypass the query engine: run every query cold, without the \
                cache or the reachability index.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"K" ~doc:"LRU capacity of the query cache.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "cache-stats" ]
          ~doc:"Print hit/miss/eviction counters after the batch.")
  in
  let run api corpus no_mining protected_ max_results slack strategy ranking
      protocol verbose file repeat no_cache cache_capacity stats_flag jobs =
    setup_logs verbose;
    if cache_capacity < 1 then begin
      Printf.eprintf "error: --cache-capacity must be at least 1 (got %d)\n"
        cache_capacity;
      exit 1
    end;
    let pool = pool_of_jobs jobs in
    handle_errors (fun () ->
        let env =
          load_env ~pool ~api ~corpus ~mining:(not no_mining) ~protected_ ()
        in
        let qs = parse_query_file file in
        let settings =
          settings ~max_results ~slack ~strategy ~ranking ~protocol
        in
        let edge_cost = edge_cost_of env in
        let protocol_check = protocol_check_of env in
        let engine =
          Prospector.Query.engine ~cache_capacity ~pool ?edge_cost
            ?protocol_check ~graph:env.graph ~hierarchy:env.hierarchy ()
        in
        let run_pass () =
          if no_cache then
            (* Cold queries are independent, so the fan-out is a plain map
               over the engine's frozen snapshot (baked with the same usage
               model the rank layer applies). *)
            let frozen = Prospector.Query.engine_frozen engine in
            Prospector_parallel.Pool.map_list pool
              (fun q ->
                ( q,
                  Prospector.Query.run ~settings ~frozen ?edge_cost
                    ?protocol_check ~graph:env.graph ~hierarchy:env.hierarchy q ))
              qs
          else Prospector.Query.run_batch ~settings engine qs
        in
        let results = run_pass () in
        for _ = 2 to repeat do
          ignore (run_pass ())
        done;
        List.iter
          (fun ((q : Prospector.Query.t), rs) ->
            Printf.printf "(%s, %s): %d result(s)\n"
              (Javamodel.Jtype.to_string q.Prospector.Query.tin)
              (Javamodel.Jtype.to_string q.Prospector.Query.tout)
              (List.length rs);
            List.iteri print_result rs)
          results;
        if stats_flag then
          print_endline
            (Prospector.Stats.cache_to_string (Prospector.Query.engine_stats engine)))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Answer a file of queries through the cached, reachability-pruned \
             query engine.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag $ max_results
      $ slack $ strategy_arg $ ranking_arg $ protocol_arg $ verbose_flag $ file
      $ repeat $ no_cache $ cache_capacity $ stats_flag $ jobs_arg)

(* ---------- mine ---------- *)

let mine_cmd =
  let run api corpus protected_ jobs =
    let pool = pool_of_jobs jobs in
    handle_errors (fun () ->
        let hierarchy =
          match api with
          | [] -> Apidata.Api.hierarchy ()
          | files -> Japi.Loader.load_files (List.map (fun f -> (f, read_file f)) files)
        in
        let corpus_sources =
          match (api, corpus) with
          | [], [] -> Apidata.Api.corpus_sources
          | _, files -> List.map (fun f -> (f, read_file f)) files
        in
        let prog = Minijava.Resolve.parse_program ~api:hierarchy corpus_sources in
        let df = Mining.Dataflow.build prog in
        let examples = Mining.Extract.extract ~pool df in
        let generalized = Mining.Generalize.run examples in
        Printf.printf "corpus methods:          %d\n"
          (List.length prog.Minijava.Tast.methods);
        Printf.printf "casts in corpus:         %d\n"
          (List.length (Mining.Dataflow.casts df));
        Printf.printf "examples extracted:      %d\n" (List.length examples);
        Printf.printf "after generalization:    %d\n\n" (List.length generalized);
        List.iter
          (fun (ex : Mining.Extract.example) ->
            Printf.printf "  %s\n"
              (Prospector.Jungloid.to_string
                 (Prospector.Jungloid.make ~input:ex.Mining.Extract.input
                    ex.Mining.Extract.elems)))
          generalized;
        let model = Mining.Protomine.of_dataflow df in
        let module Protocol = Analysis.Protocol in
        Printf.printf "\nprotocol model:          %d types, %d sequences, %d transitions\n"
          (List.length (Protocol.modeled_types model))
          (Protocol.sequence_count model)
          (Protocol.transition_count model);
        List.iter
          (fun tname ->
            let obs = Protocol.observations model ~tname in
            Printf.printf "\n  %s (%d sequences%s)\n" tname obs
              (if Protocol.modeled model ~tname then ""
               else ", below evidence floor");
            List.iter
              (fun (meth, occ) ->
                let usually =
                  match Protocol.common_successor model ~tname ~meth with
                  | Some s -> Printf.sprintf "; usually followed by %s" s
                  | None -> ""
                in
                Printf.printf "    %-28s %d uses (%d first, %d last%s)\n" meth
                  occ
                  (Protocol.start_count model ~tname ~meth)
                  (Protocol.end_count model ~tname ~meth)
                  usually)
              (Protocol.methods model ~tname))
          (Protocol.modeled_types model);
        ignore protected_)
  in
  Cmd.v
    (Cmd.info "mine" ~doc:"Extract and generalize example jungloids from a corpus.")
    Term.(const run $ api_files $ corpus_files $ protected_flag $ jobs_arg)

(* ---------- stats ---------- *)

let stats_cmd =
  let run api corpus protected_ =
    handle_errors (fun () ->
        let sig_env = load_env ~api ~corpus ~mining:false ~protected_ () in
        let full_env = load_env ~api ~corpus ~mining:true ~protected_ () in
        Printf.printf "hierarchy: %d declarations\n\n"
          (Javamodel.Hierarchy.size sig_env.hierarchy);
        Printf.printf "signature graph:\n%s\n\n"
          (Prospector.Stats.to_string (Prospector.Stats.of_graph sig_env.graph));
        Printf.printf "jungloid graph (with mined examples):\n%s\n"
          (Prospector.Stats.to_string (Prospector.Stats.of_graph full_env.graph)))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Graph statistics, before and after mining.")
    Term.(const run $ api_files $ corpus_files $ protected_flag)

(* ---------- dot ---------- *)

let dot_cmd =
  let centers =
    Arg.(
      value & opt_all string []
      & info [ "center"; "c" ] ~docv:"TYPE" ~doc:"Center type(s) of the neighborhood.")
  in
  let radius = Arg.(value & opt int 1 & info [ "radius"; "r" ] ~docv:"R" ~doc:"Hops.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run api corpus no_mining protected_ centers radius output =
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ () in
        let dot =
          match centers with
          | [] -> Prospector.Dot.full env.graph
          | cs ->
              Prospector.Dot.subgraph env.graph
                ~centers:(List.map Javamodel.Jtype.ref_of_string cs)
                ~radius
        in
        match output with
        | Some path ->
            let oc = open_out path in
            output_string oc dot;
            close_out oc;
            Printf.printf "wrote %s\n" path
        | None -> print_string dot)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export (part of) the jungloid graph as Graphviz.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag $ centers
      $ radius $ output)

(* ---------- infer ---------- *)

let infer_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Mini-Java source files containing ? holes.")
  in
  let run api corpus no_mining protected_ max_results slack strategy ranking
      protocol files =
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ () in
        let sources = List.map (fun f -> (f, read_file f)) files in
        let holes = Prospector_ide.Infer.contexts ~api:env.hierarchy sources in
        if holes = [] then print_endline "no ? holes found"
        else
          (* One engine for the whole buffer, as the IDE session would hold. *)
          Prospector_ide.Infer.suggest_all
            ~settings:(settings ~max_results ~slack ~strategy ~ranking ~protocol)
            ?edge_cost:(edge_cost_of env)
            ?protocol_check:(protocol_check_of env) ~graph:env.graph
            ~hierarchy:env.hierarchy holes
          |> List.iter (fun ((h : Prospector_ide.Infer.hole), suggestions) ->
                 Printf.printf "hole in %s.%s, expecting %s (in scope: %s)\n"
                   (Javamodel.Qname.to_string h.Prospector_ide.Infer.owner)
                   h.Prospector_ide.Infer.meth
                   (Javamodel.Jtype.simple_string h.Prospector_ide.Infer.expected)
                   (String.concat ", " (List.map fst h.Prospector_ide.Infer.vars));
                 if suggestions = [] then print_endline "  no suggestions"
                 else
                   List.iteri
                     (fun i (s : Prospector.Assist.suggestion) ->
                       Printf.printf "  %d. %s\n" (i + 1) s.Prospector.Assist.title)
                     suggestions;
                 print_newline ()))
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Infer queries from ? holes in mini-Java source and suggest code.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ strategy_arg $ ranking_arg $ protocol_arg $ files)

(* ---------- lint ---------- *)

(* The analyzer as a standalone tool: run any subset of the three passes
   (API-model lint, corpus lint, query verification) over the same inputs
   the search uses, reporting shared diagnostics. Exit codes: 0 clean,
   1 error-severity findings (or warnings under --strict), 2 inputs failed
   to load. *)

let parse_query_spec s =
  let parts =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  match parts with
  | [ tin; tout ] -> (tin, tout)
  | _ ->
      Printf.eprintf "error: bad --query %S, expected \"TIN,TOUT\"\n" s;
      exit 2

let lint_cmd =
  let pass_conv =
    Arg.enum
      [ ("api", `Api); ("corpus", `Corpus); ("query", `Query); ("proto", `Proto) ]
  in
  let passes =
    Arg.(
      value & opt_all pass_conv []
      & info [ "pass" ] ~docv:"PASS"
          ~doc:"Run only this pass: $(b,api) (model and graph lint), \
                $(b,corpus) (mini-Java linter), $(b,query) (solution \
                verifier) or $(b,proto) (mined-typestate protocol checks on \
                the corpus clients); repeatable. Default: api and corpus, \
                plus query when $(b,--query) is given.")
  in
  let queries =
    Arg.(
      value & opt_all string []
      & info [ "query"; "q" ] ~docv:"TIN,TOUT"
          ~doc:"Verify this query's solutions (repeatable): every ranked \
                jungloid is re-typechecked against the hierarchy and its \
                generated code is re-parsed and linted.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.")
  in
  let strict_flag =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit nonzero on warnings, not just errors.")
  in
  let run api corpus no_mining protected_ max_results slack strategy ranking
      protocol verbose passes queries json strict =
    setup_logs verbose;
    let passes =
      match passes with
      | [] -> [ `Api; `Corpus ] @ (if queries = [] then [] else [ `Query ])
      | ps -> ps
    in
    let loaded =
      try
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ () in
        let corpus_sources =
          match (api, corpus) with
          | [], [] -> Apidata.Api.corpus_sources
          | _, files -> List.map (fun f -> (f, read_file f)) files
        in
        let prog =
          if
            (List.mem `Corpus passes || List.mem `Proto passes)
            && corpus_sources <> []
          then
            Some (Minijava.Resolve.parse_program ~api:env.hierarchy corpus_sources)
          else None
        in
        Ok (env, prog)
      with
      | Japi.Error.E e -> Error (Japi.Error.to_string e)
      | Javamodel.Hierarchy.Unknown_type q ->
          Error (Printf.sprintf "unknown type %s" (Javamodel.Qname.to_string q))
      | Sys_error msg -> Error msg
    in
    match loaded with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok (env, prog) ->
        let run_pass = function
          | `Api -> Analysis.Apilint.lint ~graph:env.graph env.hierarchy
          | `Corpus -> (
              match prog with
              | None -> []
              | Some prog -> Analysis.Corpuslint.lint_program prog)
          | `Proto -> (
              match prog with
              | None -> []
              | Some prog ->
                  (* Against the bundled API, deviance is judged by the
                     bundled model, so a handful of client files under
                     --corpus are linted against what the whole shipped
                     corpus learned; with a custom --api the given corpus is
                     all the evidence there is. *)
                  let model =
                    match api with
                    | [] -> Apidata.Api.proto ()
                    | _ -> Mining.Protomine.mine prog
                  in
                  Analysis.Protolint.check model
                    (Mining.Protomine.sequences (Mining.Dataflow.build prog)))
          | `Query ->
              List.concat_map
                (fun spec ->
                  let tin, tout = parse_query_spec spec in
                  let q = Prospector.Query.query tin tout in
                  Prospector.Query.run
                    ~settings:
                      (settings ~max_results ~slack ~strategy ~ranking ~protocol)
                    ?edge_cost:(edge_cost_of env)
                    ?protocol_check:(protocol_check_of env) ~graph:env.graph
                    ~hierarchy:env.hierarchy q
                  |> List.concat_map (fun (r : Prospector.Query.result) ->
                         let j = r.Prospector.Query.jungloid in
                         Analysis.Verify.check env.hierarchy j
                         @ Analysis.Gencheck.check env.hierarchy j))
                queries
        in
        let ds =
          List.sort_uniq Analysis.Diagnostic.compare
            (List.concat_map run_pass passes)
        in
        if json then print_endline (Analysis.Diagnostic.list_to_json ds)
        else begin
          List.iter
            (fun d -> print_endline (Analysis.Diagnostic.to_string d))
            ds;
          print_endline (Analysis.Diagnostic.summary ds)
        end;
        let errors = Analysis.Diagnostic.count Analysis.Diagnostic.Error ds in
        let warnings =
          Analysis.Diagnostic.count Analysis.Diagnostic.Warning ds
        in
        if errors > 0 || (strict && warnings > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the analyzer: API-model lint, corpus lint, and solution \
             verification, with a shared diagnostic report.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ strategy_arg $ ranking_arg $ protocol_arg
      $ verbose_flag $ passes $ queries $ json_flag $ strict_flag)

(* ---------- serve ---------- *)

(* The daemon: load (or warm-start) the engine once, then answer query
   traffic over newline-delimited JSON — the deployment shape the ROADMAP's
   "heavy traffic" north star asks for. See DESIGN.md "Server architecture"
   for the protocol grammar and the locking model. *)

module Proto = Prospector_server.Proto
module Service = Prospector_server.Service
module Server = Prospector_server.Server
module Metrics = Prospector_server.Metrics

let reach_path graph_path = graph_path ^ ".reach"

(* What [serve] builds its engine from: a mutable graph (cold build, or a
   legacy v1 graph file) or a frozen CSR snapshot (v2 warm start — possibly
   mmapped, in which case the mutable graph is never materialized). *)
type serve_env = {
  sv_hierarchy : Javamodel.Hierarchy.t;
  sv_base : [ `Graph of Prospector.Graph.t | `Frozen of Prospector.Graph.frozen ];
  sv_usage : Mining.Usage.t option;
  sv_proto : Analysis.Protocol.model option;
  sv_corpus : (string * string) list;
      (* the mined corpus sources, kept so live reload can re-enrich a
         rebuilt graph and re-mine the protocol model; [] when not mining *)
}

let corpus_sources_for ~api ~corpus =
  match (api, corpus) with
  | [], [] -> Apidata.Api.corpus_sources
  | _, files -> List.map (fun f -> (f, read_file f)) files

(* Warm start: when --save-graph names an existing file, load the persisted
   snapshot (and the reach index, if present) instead of rebuilding from
   .japi and re-mining the corpus; on a cache miss, build as usual and
   persist both files for the next start. A v2 file mmaps straight into the
   engine; a v1 (Marshal) file still loads as a mutable graph; anything
   truncated or corrupt degrades to the cold build with a warning and the
   freshly built snapshot overwrites the bad file. The hierarchy itself is
   always re-parsed — it is the cheap part, and .japi text is the
   interchange format. *)
let load_env_for_serve ?pool ~api ~corpus ~mining ~protected_ ~save_graph () =
  let remine hierarchy =
    if not mining then (None, None)
    else
      (* The persisted snapshot already contains the spliced examples, but
         the usage and protocol models cannot be read back off it —
         re-extract them from the corpus sources (no graph mutation, so the
         loaded snapshot stays exactly what was saved). *)
      let corpus_sources = corpus_sources_for ~api ~corpus in
      if corpus_sources = [] then (None, None)
      else begin
        let t1 = Unix.gettimeofday () in
        let prog = Minijava.Resolve.parse_program ~api:hierarchy corpus_sources in
        let m =
          Mining.Usage.of_examples
            (Mining.Enrich.examples ~include_protected:protected_ ?pool prog)
        in
        let p = Mining.Protomine.mine prog in
        Printf.eprintf "usage model: re-mined in %.3f s (%d occurrences)\n%!"
          (Unix.gettimeofday () -. t1)
          (Mining.Usage.total m);
        (Some m, Some p)
      end
  in
  let cold_build () =
    let t0 = Unix.gettimeofday () in
    let env = load_env ?pool ~api ~corpus ~mining ~protected_ () in
    let build_dt = Unix.gettimeofday () -. t0 in
    let reach =
      match save_graph with
      | None ->
          Printf.eprintf "graph: built in %.3f s\n%!" build_dt;
          None
      | Some path ->
          let t1 = Unix.gettimeofday () in
          let r = Prospector.Reach.build env.graph in
          (* Persist the v2 CSR snapshot (default cost baking — a mined
             model is re-baked at load time) so the next start mmaps it. *)
          ignore (Prospector.Graph.void_node env.graph);
          let fz = Prospector.Graph.freeze env.graph in
          let gsize = Prospector.Serialize.save_frozen fz path in
          let rsize = Prospector.Serialize.save_reach r (reach_path path) in
          Printf.eprintf
            "graph: built in %.3f s; saved %d+%d bytes to %s (+.reach) in %.3f s — \
             next start loads instead\n%!"
            build_dt gsize rsize path
            (Unix.gettimeofday () -. t1);
          Some r
    in
    ( {
        sv_hierarchy = env.hierarchy;
        sv_base = `Graph env.graph;
        sv_usage = env.usage;
        sv_proto = env.proto;
        sv_corpus = (if mining then corpus_sources_for ~api ~corpus else []);
      },
      reach )
  in
  match save_graph with
  | Some path when Sys.file_exists path -> (
      let hierarchy =
        match api with
        | [] -> Apidata.Api.hierarchy ()
        | files -> Japi.Loader.load_files (List.map (fun f -> (f, read_file f)) files)
      in
      let t0 = Unix.gettimeofday () in
      let base =
        match Prospector.Serialize.load_frozen path with
        | Ok fz -> Some (`Frozen fz)
        | Error (Prospector.Serialize.Bad_magic _) -> (
            (* Not a v2 snapshot — maybe a legacy v1 graph file. *)
            match Prospector.Serialize.load_result path with
            | Ok g -> Some (`Graph g)
            | Error e ->
                Printf.eprintf "warning: ignoring %s: %s — rebuilding\n%!" path
                  (Prospector.Serialize.error_message e);
                None)
        | Error e ->
            Printf.eprintf "warning: ignoring %s: %s — rebuilding\n%!" path
              (Prospector.Serialize.error_message e);
            None
      in
      match base with
      | None -> cold_build ()
      | Some base ->
          let reach =
            let rp = reach_path path in
            if Sys.file_exists rp then
              match Prospector.Serialize.load_reach_result rp with
              | Ok r -> Some r
              | Error e ->
                  Printf.eprintf "warning: ignoring %s: %s\n%!" rp
                    (Prospector.Serialize.error_message e);
                  None
            else None
          in
          let dt = Unix.gettimeofday () -. t0 in
          Printf.eprintf
            "graph: %s from %s in %.3f s (reach index %s) — skipped build + mining\n%!"
            (match base with
            | `Frozen _ -> "mmap warm start"
            | `Graph _ -> "loaded (v1)")
            path dt
            (match reach with Some _ -> "loaded" | None -> "absent, will rebuild");
          let usage, proto = remine hierarchy in
          ( {
              sv_hierarchy = hierarchy;
              sv_base = base;
              sv_usage = usage;
              sv_proto = proto;
              sv_corpus = (if mining then corpus_sources_for ~api ~corpus else []);
            },
            reach ))
  | _ -> cold_build ()

let serve_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 7467
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port; $(b,0) picks an ephemeral one (see --port-file).")
  in
  let port_file =
    Arg.(
      value & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound port here once listening (atomically) — the \
                rendezvous for scripts using an ephemeral port.")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Worker pool size.")
  in
  let max_request_bytes =
    Arg.(
      value & opt int (1 lsl 20)
      & info [ "max-request-bytes" ] ~docv:"B"
          ~doc:"Oversized request lines get a $(b,too_large) error reply.")
  in
  let max_connections =
    Arg.(
      value & opt int 64
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Queued + in-flight connection cap; excess clients get a \
                one-line $(b,busy) reply.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request deadline: slower requests get a $(b,timeout) \
                error reply instead of their result.")
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve one request line per stdin line instead of TCP (editor \
                integration).")
  in
  let save_graph =
    Arg.(
      value & opt (some string) None
      & info [ "save-graph" ] ~docv:"PATH"
          ~doc:"Persist the built graph and reach index to $(docv) / \
                $(docv).reach on first start and warm-start from them later.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 512
      & info [ "cache-capacity" ] ~docv:"K" ~doc:"LRU capacity of the query cache.")
  in
  let session_ttl =
    Arg.(
      value & opt (some float) None
      & info [ "session-ttl" ] ~docv:"SECONDS"
          ~doc:"Evict refine sessions idle for longer than $(docv); later \
                ops on an evicted id get a $(b,session_expired) error reply. \
                Omitted = sessions only die on $(b,refine_stop) or drain.")
  in
  let watch =
    Arg.(
      value & opt (some string) None
      & info [ "watch" ] ~docv:"FILE"
          ~doc:"Poll $(docv) (a $(b,.japi) source) for modification-time \
                changes (twice a second) and apply it as a live reload \
                delta — every class it declares is added or replaced \
                in place, without restarting or dropping in-flight \
                requests.")
  in
  let run api corpus no_mining protected_ max_results slack strategy ranking
      protocol verbose host port port_file workers max_request_bytes
      max_connections deadline stdio save_graph cache_capacity session_ttl
      watch jobs =
    setup_logs verbose;
    if cache_capacity < 1 then begin
      Printf.eprintf "error: --cache-capacity must be at least 1 (got %d)\n"
        cache_capacity;
      exit 1
    end;
    if workers < 1 then begin
      Printf.eprintf "error: --workers must be at least 1 (got %d)\n" workers;
      exit 1
    end;
    let pool = pool_of_jobs jobs in
    handle_errors (fun () ->
        let env, reach =
          load_env_for_serve ~pool ~api ~corpus ~mining:(not no_mining)
            ~protected_ ~save_graph ()
        in
        let edge_cost = Option.map Mining.Usage.edge_cost env.sv_usage in
        let protocol_check =
          Option.map
            (fun m j -> Analysis.Protolint.violations m j)
            env.sv_proto
        in
        let engine =
          match env.sv_base with
          | `Graph graph ->
              Prospector.Query.engine ~cache_capacity ?reach ~pool ?edge_cost
                ?protocol_check ~graph ~hierarchy:env.sv_hierarchy ()
          | `Frozen frozen ->
              Prospector.Query.engine_of_frozen ~cache_capacity ?reach ~pool
                ?edge_cost ?protocol_check ~frozen ~hierarchy:env.sv_hierarchy ()
        in
        (* ---- live-reload callbacks (DESIGN §9) ----
           The service applies deltas; what it cannot do without the mining
           layer is injected here: re-deriving the usage/protocol models
           from corpus text and re-running the enriched cold build when a
           delta cannot be row-spliced. Both closures run under the
           service's publish mutex, so the mutable refs need no lock. *)
        let mining = not no_mining in
        let config =
          { Prospector.Sig_graph.default_config with include_protected = protected_ }
        in
        let corpus_srcs = ref env.sv_corpus in
        let usage_ref = ref env.sv_usage in
        let remodel =
          if not mining then None
          else
            Some
              (fun hierarchy src ->
                try
                  (* parse everything first — a rejected delta must leave
                     the refs untouched *)
                  let prog_new =
                    Minijava.Resolve.parse_program ~api:hierarchy
                      [ ("<reload>", src) ]
                  in
                  let all = !corpus_srcs @ [ ("<reload>", src) ] in
                  let prog_all =
                    Minijava.Resolve.parse_program ~api:hierarchy all
                  in
                  let examples =
                    Mining.Enrich.examples ~include_protected:protected_ ~pool
                      prog_new
                  in
                  (* usage grows incrementally; the protocol model has no
                     merge, so it re-learns over the full corpus (sequence
                     reconstruction is cheap next to query cost) *)
                  let usage =
                    match !usage_ref with
                    | Some u -> Mining.Usage.add_examples u examples
                    | None -> Mining.Usage.of_examples examples
                  in
                  let p = Mining.Protomine.mine prog_all in
                  usage_ref := Some usage;
                  corpus_srcs := all;
                  Ok
                    {
                      Service.rm_edge_cost = Some (Mining.Usage.edge_cost usage);
                      rm_protocol_check =
                        Some (fun j -> Analysis.Protolint.violations p j);
                      rm_vet = Some (fun j -> Analysis.Protolint.vet p j);
                    }
                with
                | Japi.Error.E e -> Error (Japi.Error.to_string e)
                | Javamodel.Hierarchy.Unknown_type q ->
                    Error
                      (Printf.sprintf "unknown type %s"
                         (Javamodel.Qname.to_string q))
                | Failure msg -> Error msg)
        in
        let rebuild =
          if not mining then None
          else
            Some
              (fun hierarchy ->
                let g = Prospector.Sig_graph.build ~config hierarchy in
                if !corpus_srcs <> [] then begin
                  let prog =
                    Minijava.Resolve.parse_program ~api:hierarchy !corpus_srcs
                  in
                  ignore
                    (Mining.Enrich.enrich ~include_protected:protected_ ~pool g
                       prog)
                end;
                ignore (Prospector.Graph.void_node g);
                let wcost = Option.map Mining.Usage.edge_cost !usage_ref in
                Prospector.Graph.freeze ?wcost g)
        in
        let reload_hook =
          match save_graph with
          | None -> None
          | Some path ->
              Some
                (fun fz reach ->
                  try
                    let gsize = Prospector.Serialize.save_frozen fz path in
                    let rsize =
                      match reach with
                      | Some r -> Prospector.Serialize.save_reach r (reach_path path)
                      | None -> 0
                    in
                    Printf.eprintf
                      "graph: re-saved %d+%d bytes to %s (+.reach) after reload\n%!"
                      gsize rsize path
                  with e ->
                    Printf.eprintf "warning: could not re-save %s: %s\n%!" path
                      (Printexc.to_string e))
        in
        let service =
          Service.create
            ~settings:(settings ~max_results ~slack ~strategy ~ranking ~protocol)
            ?vet:
              (Option.map
                 (fun m j -> Analysis.Protolint.vet m j)
                 env.sv_proto)
            ~graph_config:config ?remodel ?rebuild ?reload_hook
            ?deadline_s:deadline ?session_ttl_s:session_ttl ~engine ()
        in
        (* --watch: a polling thread that feeds the file through the same
           reload op a client would send, so metrics, gauges and --save-graph
           re-persistence all apply. *)
        (match watch with
        | None -> ()
        | Some path ->
            let mtime p =
              try Some (Unix.stat p).Unix.st_mtime with Unix.Unix_error _ -> None
            in
            let last = ref (mtime path) in
            ignore
              (Thread.create
                 (fun () ->
                   while not (Service.shutdown_requested service) do
                     Thread.delay 0.5;
                     let m = mtime path in
                     if m <> !last then begin
                       last := m;
                       match m with
                       | None -> ()  (* deleted; reload when it reappears *)
                       | Some _ -> (
                           try
                             let src = read_file path in
                             let resp =
                               Service.handle service
                                 {
                                   Proto.id = Proto.Null;
                                   req =
                                     Proto.Reload
                                       {
                                         japi = Some src;
                                         remove = [];
                                         corpus = None;
                                       };
                                 }
                             in
                             match Proto.member "ok" resp with
                             | Some (Proto.Bool true) ->
                                 let geti k =
                                   match Proto.member k resp with
                                   | Some (Proto.Int i) -> i
                                   | _ -> 0
                                 in
                                 let mode =
                                   match Proto.member "mode" resp with
                                   | Some (Proto.Str s) -> s
                                   | _ -> "?"
                                 in
                                 Printf.eprintf
                                   "watch: reloaded %s — %d op(s) (%s), \
                                    generation %d\n%!"
                                   path (geti "ops") mode (geti "generation")
                             | _ ->
                                 let msg =
                                   match
                                     Option.bind (Proto.member "error" resp)
                                       (Proto.member "message")
                                   with
                                   | Some (Proto.Str s) -> s
                                   | _ -> "?"
                                 in
                                 Printf.eprintf
                                   "watch: reload of %s rejected: %s\n%!" path
                                   msg
                           with e ->
                             Printf.eprintf "watch: cannot read %s: %s\n%!" path
                               (Printexc.to_string e))
                     end
                   done)
                 ()));
        if stdio then begin
          (* SIGINT drains exactly like the shutdown op: in-flight refine
             sessions answer shutting_down, the loop exits after the next
             reply. *)
          let drain _ = Service.request_shutdown service in
          (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain)
           with Invalid_argument _ -> ());
          Server.serve_stdio ~max_request_bytes service
        end
        else begin
          let config =
            {
              Server.default_config with
              Server.host;
              port;
              workers;
              max_request_bytes;
              max_connections;
              port_file;
            }
          in
          let server = Server.create ~config service in
          (* SIGINT and SIGTERM drain exactly like the shutdown op *)
          let drain _ = Server.shutdown server in
          (try Sys.set_signal Sys.sigint (Sys.Signal_handle drain)
           with Invalid_argument _ -> ());
          (try Sys.set_signal Sys.sigterm (Sys.Signal_handle drain)
           with Invalid_argument _ -> ());
          Server.run server
        end;
        prerr_string (Metrics.render (Service.metrics service)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the long-lived query daemon (newline-delimited JSON over TCP).")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ strategy_arg $ ranking_arg $ protocol_arg
      $ verbose_flag $ host $ port $ port_file $ workers $ max_request_bytes
      $ max_connections $ deadline $ stdio $ save_graph $ cache_capacity
      $ session_ttl $ watch $ jobs_arg)

(* ---------- client ---------- *)

(* One request per invocation, against a running daemon. The default
   rendering mirrors the one-shot subcommands byte for byte (the cram suite
   diffs them); --json prints the raw response line. *)

let client_render_results rs =
  List.iteri
    (fun i r ->
      let get k =
        match Proto.member k r with Some (Proto.Str s) -> s | _ -> ""
      in
      Printf.printf "#%d  %s\n" (i + 1) (get "jungloid");
      String.trim (get "code") |> String.split_on_char '\n'
      |> List.iter (fun line -> Printf.printf "      %s\n" line))
    rs

let client_render response =
  let member k = Proto.member k response in
  let arr k = match member k with Some (Proto.Arr xs) -> xs | _ -> [] in
  match member "op" with
  | Some (Proto.Str "query") ->
      let rs = arr "results" in
      if rs = [] then print_endline "no jungloids found"
      else client_render_results rs;
      (match member "truncated" with
      | Some (Proto.Bool true) ->
          prerr_endline
            "warning: the daemon's search hit its path limit; better-ranked \
             solutions may be missing"
      | _ -> ())
  | Some (Proto.Str "assist") ->
      let ss = arr "suggestions" in
      if ss = [] then print_endline "no suggestions"
      else
        List.iteri
          (fun i s ->
            let title =
              match Proto.member "title" s with Some (Proto.Str x) -> x | _ -> ""
            in
            let uses =
              match Proto.member "uses_var" s with
              | Some (Proto.Str v) -> Printf.sprintf "   (uses %s)" v
              | _ -> ""
            in
            Printf.printf "#%d  %s%s\n" (i + 1) title uses)
          ss
  | Some (Proto.Str "batch") ->
      List.iter
        (fun a ->
          let get k =
            match Proto.member k a with Some (Proto.Str s) -> s | _ -> ""
          in
          let rs = match Proto.member "results" a with
            | Some (Proto.Arr xs) -> xs
            | _ -> []
          in
          Printf.printf "(%s, %s): %d result(s)\n" (get "tin") (get "tout")
            (List.length rs);
          client_render_results rs)
        (arr "answers")
  | Some (Proto.Str "lint") ->
      List.iter
        (fun d ->
          let get k =
            match Proto.member k d with
            | Some (Proto.Str s) -> s
            | Some (Proto.Int i) -> string_of_int i
            | _ -> ""
          in
          let where =
            match Proto.member "subject" d with
            | Some (Proto.Str s) -> s
            | _ -> Printf.sprintf "%s:%s:%s" (get "file") (get "line") (get "col")
          in
          Printf.printf "%s: %s[%s]: %s\n" where (get "severity") (get "code")
            (get "message"))
        (arr "diagnostics");
      let count k =
        match member k with Some (Proto.Int i) -> i | _ -> 0
      in
      Printf.printf "%d error(s), %d warning(s)\n" (count "errors") (count "warnings")
  | Some (Proto.Str "refine_start")
  | Some (Proto.Str "refine_answer")
  | Some (Proto.Str "refine_status") -> (
      let int k = match member k with Some (Proto.Int i) -> i | _ -> 0 in
      (match member "session" with
      | Some (Proto.Str s) ->
          Printf.printf "session %s: %d candidate(s), %d live, %d question(s) \
                         answered\n"
            s (int "candidates") (int "live") (int "asked")
      | _ -> ());
      match (member "question", member "result") with
      | Some q, _ ->
          List.iter
            (fun b ->
              let get k =
                match Proto.member k b with Some (Proto.Str s) -> s | _ -> ""
              in
              Printf.printf "given %s = %s\n" (get "source") (get "value"))
            (match Proto.member "inputs" q with
            | Some (Proto.Arr xs) -> xs
            | _ -> []);
          print_endline "which output do you expect?";
          List.iter
            (fun c ->
              let choice =
                match Proto.member "choice" c with
                | Some (Proto.Int i) -> i
                | _ -> 0
              in
              let count =
                match Proto.member "count" c with
                | Some (Proto.Int i) -> i
                | _ -> 0
              in
              let what =
                match Proto.member "output" c with
                | Some (Proto.Str s) -> s
                | _ -> "(can't tell)"
              in
              Printf.printf "  [%d] %s   (%d candidate%s)\n" choice what count
                (if count = 1 then "" else "s"))
            (match Proto.member "choices" q with
            | Some (Proto.Arr xs) -> xs
            | _ -> [])
      | None, Some r ->
          let get k =
            match Proto.member k r with Some (Proto.Str s) -> s | _ -> ""
          in
          let rank =
            match Proto.member "rank" r with Some (Proto.Int i) -> i | _ -> 0
          in
          Printf.printf "converged: result #%d\n" rank;
          (match Proto.member "source" r with
          | Some (Proto.Str v) -> Printf.printf "(uses %s)\n" v
          | _ -> ());
          Printf.printf "%s\n" (get "jungloid");
          String.trim (get "code") |> String.split_on_char '\n'
          |> List.iter (fun line -> Printf.printf "  %s\n" line)
      | None, None -> ())
  | Some (Proto.Str "refine_stop") -> (
      match member "session" with
      | Some (Proto.Str s) -> Printf.printf "stopped %s\n" s
      | _ -> print_endline "stopped")
  | Some (Proto.Str "reload") ->
      let int k = match member k with Some (Proto.Int i) -> i | _ -> 0 in
      let mode =
        match member "mode" with Some (Proto.Str s) -> s | _ -> "?"
      in
      Printf.printf
        "reloaded: %d op(s) applied (%s), %d node(s) touched, generation %d\n"
        (int "ops") mode (int "touched") (int "generation")
  | Some (Proto.Str "stats") ->
      let int_at path k =
        match Option.bind (member path) (Proto.member k) with
        | Some (Proto.Int i) -> i
        | _ -> 0
      in
      (match member "requests" with
      | Some (Proto.Int n) -> Printf.printf "requests: %d\n" n
      | _ -> ());
      Printf.printf "graph: %d nodes, %d edges\n" (int_at "graph" "nodes")
        (int_at "graph" "edges");
      Printf.printf "cache: %d/%d entries, %d hits, %d misses\n"
        (int_at "cache" "entries") (int_at "cache" "capacity")
        (int_at "cache" "hits") (int_at "cache" "misses");
      (match member "truncated_queries" with
      | Some (Proto.Int n) when n > 0 -> Printf.printf "truncated queries: %d\n" n
      | _ -> ());
      (match member "sessions" with
      | Some (Proto.Int n) when n > 0 -> Printf.printf "sessions: %d\n" n
      | _ -> ());
      (* gauges appear only once the daemon has set one (a reload or a
         refine session), so pre-reload output is unchanged *)
      (match member "gauges" with
      | Some (Proto.Obj kvs) ->
          List.iter
            (fun (k, v) ->
              match v with
              | Proto.Int i -> Printf.printf "%s: %d\n" k i
              | _ -> ())
            kvs
      | _ -> ())
  | Some (Proto.Str "health") | Some (Proto.Str "shutdown") -> (
      match member "status" with
      | Some (Proto.Str s) -> print_endline s
      | _ -> print_endline "ok")
  | _ -> print_endline (Proto.to_string response)

let client_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon host.")
  in
  let port =
    Arg.(value & opt int 7467 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Daemon port.")
  in
  let port_file =
    Arg.(
      value & opt (some file) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Read the port from this file (written by $(b,serve --port-file)).")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the raw response line.")
  in
  let vars =
    Arg.(
      value & opt_all string []
      & info [ "var"; "v" ] ~docv:"NAME:TYPE" ~doc:"Visible variable for $(b,assist).")
  in
  let remove_args =
    Arg.(
      value & opt_all string []
      & info [ "remove" ] ~docv:"QNAME"
          ~doc:"For $(b,reload): drop this fully qualified class (repeatable).")
  in
  let corpus_arg =
    Arg.(
      value & opt (some file) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"For $(b,reload): mini-Java source whose mined examples are \
                folded into the daemon's usage/protocol models.")
  in
  let argv =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"OP"
          ~doc:"One of: $(b,query TIN TOUT), $(b,assist TOUT), $(b,batch FILE), \
                $(b,lint TIN TOUT), $(b,refine-start TIN TOUT) (or \
                $(b,refine-start TOUT) with $(b,--var)), $(b,refine-answer \
                SESSION CHOICE), $(b,refine-status SESSION), $(b,refine-stop \
                SESSION), $(b,reload FILE.japi) (with $(b,--remove) / \
                $(b,--corpus)), $(b,stats), $(b,health), $(b,shutdown), \
                $(b,raw LINE).")
  in
  let run max_results slack strategy ranking protocol host port port_file
      json_flag vars remove corpus_file argv =
    let port =
      match port_file with
      | None -> port
      | Some f -> (
          match int_of_string_opt (String.trim (read_file f)) with
          | Some p -> p
          | None ->
              Printf.eprintf "error: %s does not contain a port number\n" f;
              exit 2)
    in
    let some_results = Some max_results and some_slack = Some slack in
    (* Validate locally so a typo fails fast; send the canonical spelling. *)
    let strategy =
      Option.map Prospector.Query.strategy_to_string (parse_strategy strategy)
    in
    let ranking =
      Option.map Prospector.Query.ranking_to_string (parse_ranking ranking)
    in
    let protocol =
      Option.map Prospector.Query.protocol_to_string (parse_protocol protocol)
    in
    let line =
      let envelope req = Proto.to_string (Proto.envelope_to_json { Proto.id = Proto.Null; req }) in
      match argv with
      | [ "query"; tin; tout ] ->
          envelope
            (Proto.Query
               {
                 tin;
                 tout;
                 max_results = some_results;
                 slack = some_slack;
                 strategy;
                 ranking;
                 protocol;
                 cluster = false;
               })
      | [ "assist"; tout ] ->
          let vars =
            List.map
              (fun s ->
                match String.index_opt s ':' with
                | Some i ->
                    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
                | None ->
                    Printf.eprintf "error: bad --var %S, expected NAME:TYPE\n" s;
                    exit 2)
              vars
          in
          envelope
            (Proto.Assist
               {
                 tout;
                 vars;
                 max_results = some_results;
                 slack = some_slack;
                 strategy;
                 ranking;
                 protocol;
               })
      | [ "batch"; file ] ->
          let pairs =
            parse_query_file file
            |> List.map (fun (q : Prospector.Query.t) ->
                   ( Javamodel.Jtype.to_string q.Prospector.Query.tin,
                     Javamodel.Jtype.to_string q.Prospector.Query.tout ))
          in
          envelope
            (Proto.Batch
               {
                 pairs;
                 max_results = some_results;
                 slack = some_slack;
                 strategy;
                 ranking;
                 protocol;
               })
      | [ "lint"; tin; tout ] -> envelope (Proto.Lint { tin; tout })
      | [ "refine-start"; tin; tout ] when vars = [] ->
          envelope
            (Proto.Refine_start
               {
                 tin = Some tin;
                 tout;
                 vars = [];
                 max_results = some_results;
                 slack = some_slack;
                 strategy;
                 ranking;
                 protocol;
               })
      | [ "refine-start"; tout ] when vars <> [] ->
          let vars =
            List.map
              (fun s ->
                match String.index_opt s ':' with
                | Some i ->
                    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
                | None ->
                    Printf.eprintf "error: bad --var %S, expected NAME:TYPE\n" s;
                    exit 2)
              vars
          in
          envelope
            (Proto.Refine_start
               {
                 tin = None;
                 tout;
                 vars;
                 max_results = some_results;
                 slack = some_slack;
                 strategy;
                 ranking;
                 protocol;
               })
      | [ "refine-answer"; session; choice ] -> (
          match int_of_string_opt choice with
          | Some choice -> envelope (Proto.Refine_answer { session; choice })
          | None ->
              Printf.eprintf "error: bad choice %S, expected a number\n" choice;
              exit 2)
      | [ "refine-status"; session ] -> envelope (Proto.Refine_status { session })
      | [ "refine-stop"; session ] -> envelope (Proto.Refine_stop { session })
      | "reload" :: rest ->
          let japi =
            match rest with
            | [] -> None
            | [ file ] -> Some (read_file file)
            | _ ->
                Printf.eprintf
                  "error: reload takes at most one .japi file (plus --remove/--corpus)\n";
                exit 2
          in
          let corpus = Option.map read_file corpus_file in
          if japi = None && remove = [] && corpus = None then begin
            Printf.eprintf
              "error: reload needs a .japi file, --remove or --corpus\n";
            exit 2
          end;
          envelope (Proto.Reload { japi; remove; corpus })
      | [ "stats" ] -> envelope Proto.Stats
      | [ "health" ] -> envelope Proto.Health
      | [ "shutdown" ] -> envelope Proto.Shutdown
      | [ "raw"; line ] -> line
      | _ ->
          Printf.eprintf
            "error: bad request; see prospector client --help for the op forms\n";
          exit 2
    in
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    let ic, oc =
      try Unix.open_connection addr
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot connect to %s:%d: %s\n" host port
          (Unix.error_message e);
        exit 2
    in
    output_string oc (line ^ "\n");
    flush oc;
    let response_line =
      try input_line ic
      with End_of_file ->
        Printf.eprintf "error: daemon closed the connection without replying\n";
        exit 2
    in
    (try Unix.shutdown_connection ic with Unix.Unix_error _ -> ());
    close_in_noerr ic;
    if json_flag then print_endline response_line
    else
      match Proto.parse response_line with
      | Error msg ->
          Printf.eprintf "error: unparsable response: %s\n" msg;
          exit 2
      | Ok response -> (
          match Proto.member "ok" response with
          | Some (Proto.Bool true) -> client_render response
          | _ ->
              let get path k =
                match Option.bind (Proto.member path response) (Proto.member k) with
                | Some (Proto.Str s) -> s
                | _ -> "?"
              in
              Printf.eprintf "error[%s]: %s\n" (get "error" "code")
                (get "error" "message");
              (* reload rejections carry typed per-op details *)
              (match Proto.member "errors" response with
              | Some (Proto.Arr errs) ->
                  List.iter
                    (fun e ->
                      let s k =
                        match Proto.member k e with
                        | Some (Proto.Str s) -> s
                        | _ -> "?"
                      in
                      let idx =
                        match Proto.member "index" e with
                        | Some (Proto.Int i) -> i
                        | _ -> 0
                      in
                      Printf.eprintf "  op %d (%s %s): %s\n" idx (s "op")
                        (s "subject") (s "reason"))
                    errs
              | _ -> ());
              exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running prospector daemon and print the reply.")
    Term.(
      const run $ max_results $ slack $ strategy_arg $ ranking_arg $ protocol_arg
      $ host $ port $ port_file $ json_flag $ vars $ remove_args $ corpus_arg
      $ argv)

(* ---------- table1 ---------- *)

let table1_cmd =
  let run () =
    let graph = Apidata.Api.default_graph () in
    let hierarchy = Apidata.Api.hierarchy () in
    let ms = Apidata.Problems.run_all ~graph ~hierarchy () in
    Printf.printf "%-48s %-6s %-6s %-8s\n" "Programming problem" "paper" "ours" "time(s)";
    List.iter
      (fun (m : Apidata.Problems.measured) ->
        Printf.printf "%-48s %-6s %-6s %.3f\n"
          m.Apidata.Problems.problem.Apidata.Problems.description
          (match m.Apidata.Problems.problem.Apidata.Problems.paper with
          | Apidata.Problems.Rank r -> string_of_int r
          | Apidata.Problems.Not_found -> "No")
          (match m.Apidata.Problems.rank with
          | Some r -> string_of_int r
          | None -> "No")
          m.Apidata.Problems.time_s)
      ms;
    let found = List.length (List.filter Apidata.Problems.found ms) in
    Printf.printf "\nfound %d of %d (paper: 18 of 20)\n" found (List.length ms)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1.") Term.(const run $ const ())

(* ---------- study ---------- *)

let study_cmd =
  let seed = Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"SEED") in
  let users = Arg.(value & opt int 13 & info [ "users" ] ~docv:"N") in
  let run seed users =
    let graph = Apidata.Api.default_graph () in
    let hierarchy = Apidata.Api.hierarchy () in
    let s = Simstudy.Study_sim.simulate ~seed ~users ~graph ~hierarchy Apidata.Study.all in
    print_string (Simstudy.Study_sim.render_figure8 s)
  in
  Cmd.v
    (Cmd.info "study" ~doc:"Reproduce the Figure 8 user study (simulated).")
    Term.(const run $ seed $ users)

let () =
  let doc = "jungloid mining: helping to navigate the API jungle" in
  let info = Cmd.info "prospector" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            query_cmd;
            assist_cmd;
            refine_cmd;
            batch_cmd;
            serve_cmd;
            client_cmd;
            infer_cmd;
            mine_cmd;
            lint_cmd;
            stats_cmd;
            dot_cmd;
            table1_cmd;
            study_cmd;
          ]))
