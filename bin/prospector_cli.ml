(* The PROSPECTOR command-line tool: a programmer's search engine for API
   jungloids (the paper packaged the same engine inside Eclipse content
   assist). Subcommands:

     query TIN TOUT      synthesize jungloids for a (tin, tout) query
     assist TOUT         content-assist: suggest code for an expected type
     mine                show mining statistics and generalized examples
     stats               graph statistics (signature vs jungloid graph)
     dot                 export a neighborhood of the graph as Graphviz
     table1              reproduce the paper's Table 1
     study               reproduce the paper's Figure 8 user study

   By default everything runs against the bundled Eclipse 2.1 / J2SE model
   and corpus; --api / --corpus load your own .japi and mini-Java files. *)

open Cmdliner

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---------- shared options ---------- *)

let api_files =
  Arg.(
    value & opt_all file []
    & info [ "api" ] ~docv:"FILE"
        ~doc:"Load API signatures from this .japi file (repeatable). When \
              absent, the bundled Eclipse/J2SE model is used.")

let corpus_files =
  Arg.(
    value & opt_all file []
    & info [ "corpus" ] ~docv:"FILE"
        ~doc:"Load mining corpus from this mini-Java file (repeatable). \
              When absent (and no --api), the bundled corpus is used.")

let no_mining =
  Arg.(
    value & flag
    & info [ "no-mining" ] ~doc:"Use the signature graph only (Section 3).")

let protected_flag =
  Arg.(
    value & flag
    & info [ "protected" ]
        ~doc:"Admit protected members (the paper's proposed extension).")

let max_results =
  Arg.(value & opt int 10 & info [ "max-results"; "n" ] ~docv:"N" ~doc:"Result list length.")

let slack =
  Arg.(
    value & opt int 1
    & info [ "slack" ] ~docv:"K"
        ~doc:"Enumerate paths of cost up to shortest+K (the paper uses 1).")

let verbose_flag =
  Arg.(
    value & flag
    & info [ "verbose" ] ~doc:"Log loading, mining, and query internals to stderr.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type env = {
  hierarchy : Javamodel.Hierarchy.t;
  graph : Prospector.Graph.t;
}

let load_env ~api ~corpus ~mining ~protected_ =
  let config =
    { Prospector.Sig_graph.default_config with include_protected = protected_ }
  in
  let hierarchy =
    match api with
    | [] -> Apidata.Api.hierarchy ()
    | files -> Japi.Loader.load_files (List.map (fun f -> (f, read_file f)) files)
  in
  let graph = Prospector.Sig_graph.build ~config hierarchy in
  let corpus_sources =
    match (api, corpus) with
    | [], [] -> Apidata.Api.corpus_sources
    | _, files -> List.map (fun f -> (f, read_file f)) files
  in
  if mining && corpus_sources <> [] then begin
    let prog = Minijava.Resolve.parse_program ~api:hierarchy corpus_sources in
    ignore
      (Mining.Enrich.enrich ~include_protected:protected_ graph prog)
  end;
  { hierarchy; graph }

let settings ~max_results ~slack =
  { Prospector.Query.default_settings with max_results; slack }

let handle_errors f =
  try f () with
  | Japi.Error.E e ->
      Printf.eprintf "error: %s\n" (Japi.Error.to_string e);
      exit 1
  | Javamodel.Hierarchy.Unknown_type q ->
      Printf.eprintf "error: unknown type %s\n" (Javamodel.Qname.to_string q);
      exit 1

(* ---------- query ---------- *)

let print_result i (r : Prospector.Query.result) =
  Printf.printf "#%d  %s\n" (i + 1)
    (Prospector.Jungloid.to_string r.Prospector.Query.jungloid);
  let code = String.trim r.Prospector.Query.code in
  String.split_on_char '\n' code
  |> List.iter (fun line -> Printf.printf "      %s\n" line)

let query_cmd =
  let tin = Arg.(required & pos 0 (some string) None & info [] ~docv:"TIN") in
  let tout = Arg.(required & pos 1 (some string) None & info [] ~docv:"TOUT") in
  let cluster_flag =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:"Group similar jungloids (same type path) and show one \
                representative per group.")
  in
  let run api corpus no_mining protected_ max_results slack cluster verbose tin tout =
    setup_logs verbose;
    handle_errors (fun () ->
        let env =
          load_env ~api ~corpus ~mining:(not no_mining) ~protected_
        in
        let q = Prospector.Query.query tin tout in
        let results =
          Prospector.Query.run
            ~settings:(settings ~max_results ~slack)
            ~graph:env.graph ~hierarchy:env.hierarchy q
        in
        if results = [] then print_endline "no jungloids found"
        else if cluster then
          List.iteri
            (fun i (c : Prospector.Query.cluster) ->
              Printf.printf "#%d  [%d similar]  via %s\n" (i + 1)
                c.Prospector.Query.members c.Prospector.Query.type_path;
              print_result i c.Prospector.Query.representative)
            (Prospector.Query.cluster results)
        else List.iteri print_result results)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Synthesize jungloids for a (tin, tout) query.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ cluster_flag $ verbose_flag $ tin $ tout)

(* ---------- assist ---------- *)

let assist_cmd =
  let tout = Arg.(required & pos 0 (some string) None & info [] ~docv:"TOUT") in
  let vars =
    Arg.(
      value & opt_all string []
      & info [ "var"; "v" ] ~docv:"NAME:TYPE"
          ~doc:"A visible variable, e.g. $(b,ep:org.eclipse.ui.IEditorPart) \
                (repeatable).")
  in
  let run api corpus no_mining protected_ max_results slack vars tout =
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ in
        let parsed_vars =
          List.map
            (fun s ->
              match String.index_opt s ':' with
              | Some i ->
                  ( String.sub s 0 i,
                    Javamodel.Jtype.ref_of_string
                      (String.sub s (i + 1) (String.length s - i - 1)) )
              | None -> failwith (Printf.sprintf "bad --var %S, expected NAME:TYPE" s))
            vars
        in
        let ctx =
          {
            Prospector.Assist.vars = parsed_vars;
            expected = Javamodel.Jtype.ref_of_string tout;
          }
        in
        let suggestions =
          Prospector.Assist.suggest
            ~settings:(settings ~max_results ~slack)
            ~graph:env.graph ~hierarchy:env.hierarchy ctx
        in
        if suggestions = [] then print_endline "no suggestions"
        else
          List.iteri
            (fun i (s : Prospector.Assist.suggestion) ->
              Printf.printf "#%d  %s%s\n" (i + 1) s.Prospector.Assist.title
                (match s.Prospector.Assist.uses_var with
                | Some v -> Printf.sprintf "   (uses %s)" v
                | None -> ""))
            suggestions)
  in
  Cmd.v
    (Cmd.info "assist" ~doc:"Content assist: suggestions for an expected type.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ vars $ tout)

(* ---------- batch ---------- *)

(* Server-style operation: answer a whole file of queries through one
   Query.engine, so the reachability index is built once and repeated
   queries are LRU cache hits. The paper's engine answered one interactive
   query at a time; this is the entry point for heavy query traffic. *)

let parse_query_file path =
  read_file path |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | Some i ->
               let tin = String.sub line 0 i in
               let tout =
                 String.trim (String.sub line (i + 1) (String.length line - i - 1))
               in
               Some (Prospector.Query.query tin tout)
           | None ->
               Printf.eprintf "error: bad query line %S, expected \"TIN TOUT\"\n" line;
               exit 1)

let batch_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"QUERIES"
          ~doc:"Query file: one $(b,TIN TOUT) pair per line; blank lines and \
                $(b,#) comments are skipped.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Run the whole batch N times (passes after the first exercise \
                the warm cache).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Bypass the query engine: run every query cold, without the \
                cache or the reachability index.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"K" ~doc:"LRU capacity of the query cache.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "cache-stats" ]
          ~doc:"Print hit/miss/eviction counters after the batch.")
  in
  let run api corpus no_mining protected_ max_results slack verbose file repeat
      no_cache cache_capacity stats_flag =
    setup_logs verbose;
    if cache_capacity < 1 then begin
      Printf.eprintf "error: --cache-capacity must be at least 1 (got %d)\n"
        cache_capacity;
      exit 1
    end;
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ in
        let qs = parse_query_file file in
        let settings = settings ~max_results ~slack in
        let engine =
          Prospector.Query.engine ~cache_capacity ~graph:env.graph
            ~hierarchy:env.hierarchy ()
        in
        let run_pass () =
          if no_cache then
            List.map
              (fun q ->
                (q, Prospector.Query.run ~settings ~graph:env.graph ~hierarchy:env.hierarchy q))
              qs
          else Prospector.Query.run_batch ~settings engine qs
        in
        let results = run_pass () in
        for _ = 2 to repeat do
          ignore (run_pass ())
        done;
        List.iter
          (fun ((q : Prospector.Query.t), rs) ->
            Printf.printf "(%s, %s): %d result(s)\n"
              (Javamodel.Jtype.to_string q.Prospector.Query.tin)
              (Javamodel.Jtype.to_string q.Prospector.Query.tout)
              (List.length rs);
            List.iteri print_result rs)
          results;
        if stats_flag then
          print_endline
            (Prospector.Stats.cache_to_string (Prospector.Query.engine_stats engine)))
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Answer a file of queries through the cached, reachability-pruned \
             query engine.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag $ max_results
      $ slack $ verbose_flag $ file $ repeat $ no_cache $ cache_capacity $ stats_flag)

(* ---------- mine ---------- *)

let mine_cmd =
  let run api corpus protected_ =
    handle_errors (fun () ->
        let hierarchy =
          match api with
          | [] -> Apidata.Api.hierarchy ()
          | files -> Japi.Loader.load_files (List.map (fun f -> (f, read_file f)) files)
        in
        let corpus_sources =
          match (api, corpus) with
          | [], [] -> Apidata.Api.corpus_sources
          | _, files -> List.map (fun f -> (f, read_file f)) files
        in
        let prog = Minijava.Resolve.parse_program ~api:hierarchy corpus_sources in
        let df = Mining.Dataflow.build prog in
        let examples = Mining.Extract.extract df in
        let generalized = Mining.Generalize.run examples in
        Printf.printf "corpus methods:          %d\n"
          (List.length prog.Minijava.Tast.methods);
        Printf.printf "casts in corpus:         %d\n"
          (List.length (Mining.Dataflow.casts df));
        Printf.printf "examples extracted:      %d\n" (List.length examples);
        Printf.printf "after generalization:    %d\n\n" (List.length generalized);
        List.iter
          (fun (ex : Mining.Extract.example) ->
            Printf.printf "  %s\n"
              (Prospector.Jungloid.to_string
                 (Prospector.Jungloid.make ~input:ex.Mining.Extract.input
                    ex.Mining.Extract.elems)))
          generalized;
        ignore protected_)
  in
  Cmd.v
    (Cmd.info "mine" ~doc:"Extract and generalize example jungloids from a corpus.")
    Term.(const run $ api_files $ corpus_files $ protected_flag)

(* ---------- stats ---------- *)

let stats_cmd =
  let run api corpus protected_ =
    handle_errors (fun () ->
        let sig_env = load_env ~api ~corpus ~mining:false ~protected_ in
        let full_env = load_env ~api ~corpus ~mining:true ~protected_ in
        Printf.printf "hierarchy: %d declarations\n\n"
          (Javamodel.Hierarchy.size sig_env.hierarchy);
        Printf.printf "signature graph:\n%s\n\n"
          (Prospector.Stats.to_string (Prospector.Stats.of_graph sig_env.graph));
        Printf.printf "jungloid graph (with mined examples):\n%s\n"
          (Prospector.Stats.to_string (Prospector.Stats.of_graph full_env.graph)))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Graph statistics, before and after mining.")
    Term.(const run $ api_files $ corpus_files $ protected_flag)

(* ---------- dot ---------- *)

let dot_cmd =
  let centers =
    Arg.(
      value & opt_all string []
      & info [ "center"; "c" ] ~docv:"TYPE" ~doc:"Center type(s) of the neighborhood.")
  in
  let radius = Arg.(value & opt int 1 & info [ "radius"; "r" ] ~docv:"R" ~doc:"Hops.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run api corpus no_mining protected_ centers radius output =
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ in
        let dot =
          match centers with
          | [] -> Prospector.Dot.full env.graph
          | cs ->
              Prospector.Dot.subgraph env.graph
                ~centers:(List.map Javamodel.Jtype.ref_of_string cs)
                ~radius
        in
        match output with
        | Some path ->
            let oc = open_out path in
            output_string oc dot;
            close_out oc;
            Printf.printf "wrote %s\n" path
        | None -> print_string dot)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export (part of) the jungloid graph as Graphviz.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag $ centers
      $ radius $ output)

(* ---------- infer ---------- *)

let infer_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Mini-Java source files containing ? holes.")
  in
  let run api corpus no_mining protected_ max_results slack files =
    handle_errors (fun () ->
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ in
        let sources = List.map (fun f -> (f, read_file f)) files in
        let holes = Prospector_ide.Infer.contexts ~api:env.hierarchy sources in
        if holes = [] then print_endline "no ? holes found"
        else
          (* One engine for the whole buffer, as the IDE session would hold. *)
          Prospector_ide.Infer.suggest_all
            ~settings:(settings ~max_results ~slack)
            ~graph:env.graph ~hierarchy:env.hierarchy holes
          |> List.iter (fun ((h : Prospector_ide.Infer.hole), suggestions) ->
                 Printf.printf "hole in %s.%s, expecting %s (in scope: %s)\n"
                   (Javamodel.Qname.to_string h.Prospector_ide.Infer.owner)
                   h.Prospector_ide.Infer.meth
                   (Javamodel.Jtype.simple_string h.Prospector_ide.Infer.expected)
                   (String.concat ", " (List.map fst h.Prospector_ide.Infer.vars));
                 if suggestions = [] then print_endline "  no suggestions"
                 else
                   List.iteri
                     (fun i (s : Prospector.Assist.suggestion) ->
                       Printf.printf "  %d. %s\n" (i + 1) s.Prospector.Assist.title)
                     suggestions;
                 print_newline ()))
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Infer queries from ? holes in mini-Java source and suggest code.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ files)

(* ---------- lint ---------- *)

(* The analyzer as a standalone tool: run any subset of the three passes
   (API-model lint, corpus lint, query verification) over the same inputs
   the search uses, reporting shared diagnostics. Exit codes: 0 clean,
   1 error-severity findings (or warnings under --strict), 2 inputs failed
   to load. *)

let parse_query_spec s =
  let parts =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  match parts with
  | [ tin; tout ] -> (tin, tout)
  | _ ->
      Printf.eprintf "error: bad --query %S, expected \"TIN,TOUT\"\n" s;
      exit 2

let lint_cmd =
  let pass_conv =
    Arg.enum [ ("api", `Api); ("corpus", `Corpus); ("query", `Query) ]
  in
  let passes =
    Arg.(
      value & opt_all pass_conv []
      & info [ "pass" ] ~docv:"PASS"
          ~doc:"Run only this pass: $(b,api) (model and graph lint), \
                $(b,corpus) (mini-Java linter) or $(b,query) (solution \
                verifier); repeatable. Default: api and corpus, plus query \
                when $(b,--query) is given.")
  in
  let queries =
    Arg.(
      value & opt_all string []
      & info [ "query"; "q" ] ~docv:"TIN,TOUT"
          ~doc:"Verify this query's solutions (repeatable): every ranked \
                jungloid is re-typechecked against the hierarchy and its \
                generated code is re-parsed and linted.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.")
  in
  let strict_flag =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit nonzero on warnings, not just errors.")
  in
  let run api corpus no_mining protected_ max_results slack verbose passes
      queries json strict =
    setup_logs verbose;
    let passes =
      match passes with
      | [] -> [ `Api; `Corpus ] @ (if queries = [] then [] else [ `Query ])
      | ps -> ps
    in
    let loaded =
      try
        let env = load_env ~api ~corpus ~mining:(not no_mining) ~protected_ in
        let corpus_sources =
          match (api, corpus) with
          | [], [] -> Apidata.Api.corpus_sources
          | _, files -> List.map (fun f -> (f, read_file f)) files
        in
        let prog =
          if List.mem `Corpus passes && corpus_sources <> [] then
            Some (Minijava.Resolve.parse_program ~api:env.hierarchy corpus_sources)
          else None
        in
        Ok (env, prog)
      with
      | Japi.Error.E e -> Error (Japi.Error.to_string e)
      | Javamodel.Hierarchy.Unknown_type q ->
          Error (Printf.sprintf "unknown type %s" (Javamodel.Qname.to_string q))
      | Sys_error msg -> Error msg
    in
    match loaded with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok (env, prog) ->
        let run_pass = function
          | `Api -> Analysis.Apilint.lint ~graph:env.graph env.hierarchy
          | `Corpus -> (
              match prog with
              | None -> []
              | Some prog -> Analysis.Corpuslint.lint_program prog)
          | `Query ->
              List.concat_map
                (fun spec ->
                  let tin, tout = parse_query_spec spec in
                  let q = Prospector.Query.query tin tout in
                  Prospector.Query.run
                    ~settings:(settings ~max_results ~slack)
                    ~graph:env.graph ~hierarchy:env.hierarchy q
                  |> List.concat_map (fun (r : Prospector.Query.result) ->
                         let j = r.Prospector.Query.jungloid in
                         Analysis.Verify.check env.hierarchy j
                         @ Analysis.Gencheck.check env.hierarchy j))
                queries
        in
        let ds =
          List.sort_uniq Analysis.Diagnostic.compare
            (List.concat_map run_pass passes)
        in
        if json then print_endline (Analysis.Diagnostic.list_to_json ds)
        else begin
          List.iter
            (fun d -> print_endline (Analysis.Diagnostic.to_string d))
            ds;
          print_endline (Analysis.Diagnostic.summary ds)
        end;
        let errors = Analysis.Diagnostic.count Analysis.Diagnostic.Error ds in
        let warnings =
          Analysis.Diagnostic.count Analysis.Diagnostic.Warning ds
        in
        if errors > 0 || (strict && warnings > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the analyzer: API-model lint, corpus lint, and solution \
             verification, with a shared diagnostic report.")
    Term.(
      const run $ api_files $ corpus_files $ no_mining $ protected_flag
      $ max_results $ slack $ verbose_flag $ passes $ queries $ json_flag
      $ strict_flag)

(* ---------- table1 ---------- *)

let table1_cmd =
  let run () =
    let graph = Apidata.Api.default_graph () in
    let hierarchy = Apidata.Api.hierarchy () in
    let ms = Apidata.Problems.run_all ~graph ~hierarchy () in
    Printf.printf "%-48s %-6s %-6s %-8s\n" "Programming problem" "paper" "ours" "time(s)";
    List.iter
      (fun (m : Apidata.Problems.measured) ->
        Printf.printf "%-48s %-6s %-6s %.3f\n"
          m.Apidata.Problems.problem.Apidata.Problems.description
          (match m.Apidata.Problems.problem.Apidata.Problems.paper with
          | Apidata.Problems.Rank r -> string_of_int r
          | Apidata.Problems.Not_found -> "No")
          (match m.Apidata.Problems.rank with
          | Some r -> string_of_int r
          | None -> "No")
          m.Apidata.Problems.time_s)
      ms;
    let found = List.length (List.filter Apidata.Problems.found ms) in
    Printf.printf "\nfound %d of %d (paper: 18 of 20)\n" found (List.length ms)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1.") Term.(const run $ const ())

(* ---------- study ---------- *)

let study_cmd =
  let seed = Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"SEED") in
  let users = Arg.(value & opt int 13 & info [ "users" ] ~docv:"N") in
  let run seed users =
    let graph = Apidata.Api.default_graph () in
    let hierarchy = Apidata.Api.hierarchy () in
    let s = Simstudy.Study_sim.simulate ~seed ~users ~graph ~hierarchy Apidata.Study.all in
    print_string (Simstudy.Study_sim.render_figure8 s)
  in
  Cmd.v
    (Cmd.info "study" ~doc:"Reproduce the Figure 8 user study (simulated).")
    Term.(const run $ seed $ users)

let () =
  ignore contains;
  let doc = "jungloid mining: helping to navigate the API jungle" in
  let info = Cmd.info "prospector" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            query_cmd;
            assist_cmd;
            batch_cmd;
            infer_cmd;
            mine_cmd;
            lint_cmd;
            stats_cmd;
            dot_cmd;
            table1_cmd;
            study_cmd;
          ]))
