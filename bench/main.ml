(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation, the Section 5 performance measurements, and the ablations
   called out in DESIGN.md, then runs Bechamel micro-benchmarks of the core
   operations.

   Run with: dune exec bench/main.exe            (everything)
             dune exec bench/main.exe -- table1  (one section)

   Sections: table1 perf figure8 figures mining_accuracy rank_ablation
             search_bound cap_sweep objparam cache analysis server\n             parallel topk rank refine proto micro                        *)

module Query = Prospector.Query
module Sig_graph = Prospector.Sig_graph
module Stats = Prospector.Stats
module Problems = Apidata.Problems

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* ------------------------------------------------------------------ *)
(* Table 1: query processing                                           *)
(* ------------------------------------------------------------------ *)

let section_table1 () =
  rule "Table 1 — query processing (paper rank vs measured rank)";
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let ms = Problems.run_all ~graph ~hierarchy () in
  Printf.printf "%-46s %-38s %-6s %-6s %s\n" "Programming problem" "query (tin, tout)"
    "paper" "ours" "time(s)";
  let simple s =
    match List.rev (String.split_on_char '.' s) with x :: _ -> x | [] -> s
  in
  List.iter
    (fun (m : Problems.measured) ->
      let p = m.Problems.problem in
      Printf.printf "%-46s %-38s %-6s %-6s %.3f\n" p.Problems.description
        (Printf.sprintf "(%s, %s)" (simple p.Problems.tin) (simple p.Problems.tout))
        (match p.Problems.paper with
        | Problems.Rank r -> string_of_int r
        | Problems.Not_found -> "No")
        (match m.Problems.rank with Some r -> string_of_int r | None -> "No")
        m.Problems.time_s)
    ms;
  let found = List.filter Problems.found ms in
  let rank1 = List.filter (fun (m : Problems.measured) -> m.Problems.rank = Some 1) ms in
  let avg_time =
    List.fold_left (fun a (m : Problems.measured) -> a +. m.Problems.time_s) 0.0 ms
    /. float_of_int (List.length ms)
  in
  Printf.printf
    "\nfound: %d/20 (paper 18/20); rank 1: %d (paper 11); average time %.3fs (paper 0.23s)\n"
    (List.length found) (List.length rank1) avg_time

(* ------------------------------------------------------------------ *)
(* Extended evaluation: 18 more problems over the broadened model       *)
(* ------------------------------------------------------------------ *)

let section_extended () =
  rule "Extended evaluation — 18 additional problems (beyond the paper)";
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let ms = Apidata.Extended.run_all ~graph ~hierarchy () in
  Printf.printf "%-50s %-8s %-8s\n" "Programming problem" "bound" "measured";
  List.iter
    (fun (m : Apidata.Extended.measured) ->
      Printf.printf "%-50s <=%-6d %-8s\n"
        m.Apidata.Extended.problem.Apidata.Extended.description
        m.Apidata.Extended.problem.Apidata.Extended.max_rank
        (match m.Apidata.Extended.rank with
        | Some r -> string_of_int r
        | None -> "No"))
    ms;
  let ok = List.filter Apidata.Extended.ok ms in
  let rank1 = List.filter (fun (m : Apidata.Extended.measured) -> m.Apidata.Extended.rank = Some 1) ms in
  Printf.printf "\nfound within bound: %d/%d; rank 1: %d\n" (List.length ok)
    (List.length ms) (List.length rank1)

(* ------------------------------------------------------------------ *)
(* Section 5: performance                                              *)
(* ------------------------------------------------------------------ *)

let percentile xs p =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  if n = 0 then 0.0 else a.(min (n - 1) (int_of_float (p *. float_of_int n)))

let section_perf () =
  rule "Section 5 — performance measurements";
  let load_t, hierarchy =
    time_of (fun () -> Japi.Loader.load_files Apidata.Api.api_sources)
  in
  Printf.printf "API model load (parse + resolve):        %.4f s (paper: 1.5 s)\n" load_t;
  let build_t, graph = time_of (fun () -> Sig_graph.build hierarchy) in
  Printf.printf "signature graph construction:            %.4f s\n" build_t;
  let mine_t, _ =
    time_of (fun () -> Mining.Enrich.enrich graph (Apidata.Api.program ()))
  in
  Printf.printf "corpus mining + enrichment:              %.4f s\n" mine_t;
  (* the paper's on-disk graph: 8 MB, loaded in 1.5 s *)
  let path = Filename.temp_file "prospector" ".graph" in
  let save_t, size = time_of (fun () -> Prospector.Serialize.save graph path) in
  let load_graph_t, _ = time_of (fun () -> Prospector.Serialize.load path) in
  Sys.remove path;
  Printf.printf "graph on disk: %d KiB, saved in %.4f s, loaded in %.4f s (paper: 8 MB, 1.5 s)\n"
    (size / 1024) save_t load_graph_t;
  Printf.printf "\n%s\n" (Stats.to_string (Stats.of_graph graph));
  let times_curated =
    List.map
      (fun (p : Problems.t) ->
        fst
          (time_of (fun () ->
               Query.run ~graph ~hierarchy (Query.query p.Problems.tin p.Problems.tout))))
      Problems.all
  in
  let synth_h = Corpusgen.Workload.scaling_api ~classes:2000 in
  let synth_build_t, synth_g = time_of (fun () -> Sig_graph.build synth_h) in
  let qs = Corpusgen.Workload.random_queries synth_h synth_g ~count:40 ~seed:9 in
  let times_synth =
    List.map
      (fun q -> fst (time_of (fun () -> Query.run ~graph:synth_g ~hierarchy:synth_h q)))
      qs
  in
  let all_times = times_curated @ times_synth in
  let frac_under t =
    float_of_int (List.length (List.filter (fun x -> x < t) all_times))
    /. float_of_int (List.length all_times)
  in
  Printf.printf "synthetic graph: 2000 classes, built in %.3f s (%s)\n" synth_build_t
    (let s = Stats.of_graph synth_g in
     Printf.sprintf "%d nodes, %d edges" s.Stats.nodes s.Stats.edges);
  Printf.printf "\nquery latency over %d queries (curated + synthetic):\n"
    (List.length all_times);
  Printf.printf "  max    %.4f s   (paper: all under 1.1 s)\n"
    (List.fold_left max 0.0 all_times);
  Printf.printf "  p85    %.4f s   (paper: 85%% under 0.5 s)\n" (percentile all_times 0.85);
  Printf.printf "  median %.4f s\n" (percentile all_times 0.5);
  Printf.printf "  under 0.5 s: %.0f%%   under 1.1 s: %.0f%%\n" (100.0 *. frac_under 0.5)
    (100.0 *. frac_under 1.1)

(* ------------------------------------------------------------------ *)
(* Scaling sweep: build and query time vs API size                     *)
(* ------------------------------------------------------------------ *)

let section_scaling () =
  rule "Scaling — graph construction and query latency vs API size";
  Printf.printf "%-10s %-10s %-10s %-14s %-14s\n" "classes" "nodes" "edges"
    "build (s)" "query p50 (s)";
  List.iter
    (fun classes ->
      let h = Corpusgen.Workload.scaling_api ~classes in
      let build_t, g = time_of (fun () -> Sig_graph.build h) in
      let qs = Corpusgen.Workload.random_queries h g ~count:20 ~seed:17 in
      let times =
        List.map (fun q -> fst (time_of (fun () -> Query.run ~graph:g ~hierarchy:h q))) qs
      in
      let s = Stats.of_graph g in
      Printf.printf "%-10d %-10d %-10d %-14.4f %-14.5f\n" classes s.Stats.nodes
        s.Stats.edges build_t (percentile times 0.5))
    [ 250; 500; 1000; 2000; 4000 ]

(* ------------------------------------------------------------------ *)
(* Figure 8: the user study                                            *)
(* ------------------------------------------------------------------ *)

let section_figure8 () =
  rule "Figure 8 — user study (simulated; see DESIGN.md for the model)";
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let s = Simstudy.Study_sim.simulate ~graph ~hierarchy Apidata.Study.all in
  print_string (Simstudy.Study_sim.render_figure8 s);
  print_endline
    "(paper: ~2x on problems 1-3, parity on problem 4; 10 of 13 users faster,\n\
    \ average speedup 1.9; baseline often resorted to reimplementation)";
  (* robustness: the headline speedup across independent seeds *)
  let speedups =
    List.map
      (fun seed ->
        (Simstudy.Study_sim.simulate ~seed ~graph ~hierarchy Apidata.Study.all)
          .Simstudy.Study_sim.avg_speedup)
      [ 1; 2; 3; 5; 8; 13; 21; 42; 99; 2005 ]
  in
  let mean = List.fold_left ( +. ) 0.0 speedups /. 10.0 in
  let lo = List.fold_left min infinity speedups in
  let hi = List.fold_left max 0.0 speedups in
  Printf.printf "speedup across 10 seeds: mean %.2fx, range [%.2fx, %.2fx]\n" mean lo hi

(* ------------------------------------------------------------------ *)
(* Figures 1, 3, 6: graph structure                                    *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Every BENCH_*.json is stamped with the size of the model it measured
   (total methods) and the commit, so archived numbers stay traceable when
   quoted outside the repo. *)
let commit_id =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let hier_methods h =
  Javamodel.Hierarchy.fold h ~init:0 ~f:(fun n d ->
      n + List.length d.Javamodel.Decl.methods)

let write_bench ~model_methods path json =
  let stamp =
    Printf.sprintf "\n  \"model_methods\": %d,\n  \"commit\": %S," model_methods
      (Lazy.force commit_id)
  in
  let i = String.index json '{' in
  write_file path
    (String.sub json 0 (i + 1)
    ^ stamp
    ^ String.sub json (i + 1) (String.length json - i - 1))

let section_figures () =
  rule "Figures 1, 3, 6 — graph excerpts (DOT)";
  let hierarchy = Apidata.Api.hierarchy () in
  let g1 = Apidata.Api.signature_graph () in
  let centers =
    List.map Javamodel.Jtype.ref_of_string
      [
        "org.eclipse.core.resources.IFile";
        "org.eclipse.jdt.core.ICompilationUnit";
        "org.eclipse.jdt.core.dom.ASTNode";
      ]
  in
  write_file "fig1_signature_graph.dot" (Prospector.Dot.subgraph g1 ~centers ~radius:1);
  let g3 = Apidata.Api.signature_graph () in
  let added = Sig_graph.add_all_downcasts g3 hierarchy in
  write_file "fig3_naive_downcasts.dot"
    (Prospector.Dot.subgraph g3
       ~centers:
         (List.map Javamodel.Jtype.ref_of_string
            [
              "org.eclipse.jface.viewers.ISelection";
              "org.eclipse.jdt.internal.debug.ui.display.JavaInspectExpression";
            ])
       ~radius:1);
  (* An inviable query: nothing ever casts an SWT Image to a
     JavaInspectExpression, but the naive graph offers the bare
     Object-to-JavaInspectExpression cast one widening away. *)
  let spurious_q =
    Query.query "org.eclipse.swt.graphics.Image"
      "org.eclipse.jdt.internal.debug.ui.display.JavaInspectExpression"
  in
  let spurious = Query.run ~graph:g3 ~hierarchy spurious_q in
  let shortest g =
    match
      ( Prospector.Graph.find_type_node g spurious_q.Query.tin,
        Prospector.Graph.find_type_node g spurious_q.Query.tout )
    with
    | Some src, Some dst -> Prospector.Search.shortest_cost g ~sources:[ src ] ~target:dst
    | _ -> None
  in
  Printf.printf
    "naive downcasts: %d edges added; (Image, JavaInspectExpression) now has %d \
     jungloids, the shortest only %s elementary jungloid(s) long —\n\
     the short inviable casts the paper's Figure 3 warns about\n"
    added (List.length spurious)
    (match shortest g3 with Some m -> string_of_int m | None -> "-");
  let g6, _ = Apidata.Api.jungloid_graph () in
  let sel =
    Javamodel.Jtype.ref_of_string "org.eclipse.jface.viewers.IStructuredSelection"
  in
  let jie =
    Javamodel.Jtype.ref_of_string
      "org.eclipse.jdt.internal.debug.ui.display.JavaInspectExpression"
  in
  write_file "fig6_jungloid_graph.dot"
    (Prospector.Dot.subgraph g6 ~centers:[ sel; jie ] ~radius:2);
  let viable = Query.run ~graph:g6 ~hierarchy spurious_q in
  Printf.printf
    "jungloid graph: the same query's shortest candidate is %s elementary jungloids \
     long (%d results) — every downcast is reachable only through a mined, blessed \
     chain; the one-step nonsense cast is gone\n"
    (match shortest g6 with Some m -> string_of_int m | None -> "-")
    (List.length viable)

(* ------------------------------------------------------------------ *)
(* Section 4.4 ablation: mining accuracy                               *)
(* ------------------------------------------------------------------ *)

let section_mining_accuracy () =
  rule "Ablation — mining accuracy vs corpus coverage (Section 4.4)";
  Printf.printf "%-10s %-22s %-22s %-22s\n" "coverage" "generalize min_keep=1"
    "no generalization" "generalize min_keep=0";
  List.iter
    (fun coverage ->
      let t =
        Corpusgen.Truthgen.generate
          { Corpusgen.Truthgen.default_params with producers = 20; coverage; seed = 13 }
      in
      let s1 = Corpusgen.Truthgen.score ~generalize:true ~min_keep:1 t in
      let s2 = Corpusgen.Truthgen.score ~generalize:false t in
      let s3 = Corpusgen.Truthgen.score ~generalize:true ~min_keep:0 t in
      let cell (s : Corpusgen.Truthgen.score) =
        Printf.sprintf "C=%.2f P=%.2f" s.Corpusgen.Truthgen.completeness
          s.Corpusgen.Truthgen.precision
      in
      Printf.printf "%-10.2f %-22s %-22s %-22s\n" coverage (cell s1) (cell s2) (cell s3))
    [ 0.25; 0.5; 0.75; 1.0 ];
  (* The overgeneralization hazard needs an unconflicted example: with a
     single covered producer, min_keep=0 collapses the suffix to the bare
     cast and precision craters. *)
  let single = Array.init 20 (fun i -> i = 0) in
  let t =
    Corpusgen.Truthgen.generate_with ~covered:single
      { Corpusgen.Truthgen.default_params with producers = 20; seed = 13 }
  in
  let s1 = Corpusgen.Truthgen.score ~generalize:true ~min_keep:1 t in
  let s3 = Corpusgen.Truthgen.score ~generalize:true ~min_keep:0 t in
  Printf.printf "%-10s C=%.2f P=%.2f %22s C=%.2f P=%.2f\n" "1 example"
    s1.Corpusgen.Truthgen.completeness s1.Corpusgen.Truthgen.precision ""
    s3.Corpusgen.Truthgen.completeness s3.Corpusgen.Truthgen.precision;
  (* Flow-sensitivity ablation: one method reuses a single Object variable
     across producers — viable code whose flow-insensitive slice conflates
     the reassignments (the imprecision source the paper names). *)
  let t =
    Corpusgen.Truthgen.generate
      { Corpusgen.Truthgen.default_params with producers = 10; reuse_variable = true; seed = 5 }
  in
  let si = Corpusgen.Truthgen.score ~tin:"void" t in
  let ss = Corpusgen.Truthgen.score ~flow_sensitive:true ~tin:"void" t in
  Printf.printf "%-10s C=%.2f P=%.2f (paper's flow-insensitive slicer)\n" "reuse-var"
    si.Corpusgen.Truthgen.completeness si.Corpusgen.Truthgen.precision;
  Printf.printf "%-10s C=%.2f P=%.2f (flow-sensitive ablation)\n" ""
    ss.Corpusgen.Truthgen.completeness ss.Corpusgen.Truthgen.precision;
  print_endline
    "(C: fraction of viable downcast jungloids synthesizable from the query's input\n\
    \ type; P: fraction of synthesized downcast jungloids viable under ground truth.\n\
    \ Without generalization examples keep their full prefixes and the queries fail;\n\
    \ min_keep=0 can overgeneralize an unconflicted example to a bare cast.)"

(* ------------------------------------------------------------------ *)
(* Ablation: ranking heuristic variants                                *)
(* ------------------------------------------------------------------ *)

let section_rank_ablation () =
  rule "Ablation — ranking heuristic variants on Table 1";
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let run_with ?(estimate = false) name weights =
    let settings = { Query.default_settings with weights; estimate_freevars = estimate } in
    let ms = Problems.run_all ~settings ~graph ~hierarchy () in
    let found = List.filter Problems.found ms in
    let ranks = List.filter_map (fun (m : Problems.measured) -> m.Problems.rank) ms in
    let mean_rank =
      if ranks = [] then 0.0
      else float_of_int (List.fold_left ( + ) 0 ranks) /. float_of_int (List.length ranks)
    in
    let rank1 =
      List.length
        (List.filter (fun (m : Problems.measured) -> m.Problems.rank = Some 1) ms)
    in
    Printf.printf "%-34s found %2d/20   rank-1 %2d   mean rank %.2f\n" name
      (List.length found) rank1 mean_rank
  in
  let w = Prospector.Rank.default_weights in
  run_with "full heuristic (paper)" w;
  run_with "no package tiebreak" { w with Prospector.Rank.package_tiebreak = false };
  run_with "no generality tiebreak" { w with Prospector.Rank.generality_tiebreak = false };
  run_with "length only"
    { w with Prospector.Rank.package_tiebreak = false; generality_tiebreak = false };
  run_with "free variables not charged" { w with Prospector.Rank.freevar_cost = 0 };
  run_with "free variables cost 4" { w with Prospector.Rank.freevar_cost = 4 };
  run_with ~estimate:true "free variables cost estimated (future work)" w

(* ------------------------------------------------------------------ *)
(* Ablation: search bound (paths of cost <= m + slack)                 *)
(* ------------------------------------------------------------------ *)

let section_search_bound () =
  rule "Ablation — path enumeration bound m+k (the paper fixes k=1)";
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  List.iter
    (fun slack ->
      let settings = { Query.default_settings with slack; max_results = 1000 } in
      let t0 = Unix.gettimeofday () in
      let ms = Problems.run_all ~settings ~graph ~hierarchy () in
      let dt = Unix.gettimeofday () -. t0 in
      let found = List.length (List.filter Problems.found ms) in
      let candidates =
        List.fold_left
          (fun a (m : Problems.measured) -> a + List.length m.Problems.results)
          0 ms
      in
      Printf.printf
        "m+%d: found %2d/20, %4d candidates across the 20 queries, %.3f s total\n" slack
        found candidates dt)
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Ablation: extraction cap (Section 4.2's blowup)                     *)
(* ------------------------------------------------------------------ *)

let section_cap_sweep () =
  rule "Ablation — per-cast extraction cap on a branchy corpus";
  let h, corpus = Corpusgen.Workload.branchy_corpus ~branches:64 in
  let prog = Minijava.Resolve.parse_program ~api:h corpus in
  let df = Mining.Dataflow.build prog in
  List.iter
    (fun cap ->
      let t, examples =
        time_of (fun () -> Mining.Extract.extract ~max_per_cast:cap df)
      in
      Printf.printf "cap %4d: %4d examples extracted in %.4f s\n" cap
        (List.length examples) t)
    [ 4; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* Ablation: Section 4.3 Object/String-parameter mining                *)
(* ------------------------------------------------------------------ *)

let section_objparam () =
  rule "Ablation — Object/String-parameter mining (Section 4.3)";
  let hierarchy = Apidata.Api.hierarchy () in
  let prog = Apidata.Api.program () in
  (* The motivating call: IDocumentProvider.getDocument(Object element) —
     declared to accept anything, actually wanting editor inputs. *)
  let q = Query.query "org.eclipse.ui.IEditorInput" "org.eclipse.jface.text.IDocument" in
  let unrestricted = Sig_graph.build hierarchy in
  let r1 = Query.run ~graph:unrestricted ~hierarchy q in
  let config = { Sig_graph.default_config with restrict_obj_string_params = true } in
  let restricted = Sig_graph.build ~config hierarchy in
  let r2 = Query.run ~graph:restricted ~hierarchy q in
  let mined = Sig_graph.build ~config hierarchy in
  let stats = Mining.Objparam.enrich mined prog in
  let r3 = Query.run ~graph:mined ~hierarchy q in
  Printf.printf "query (IEditorInput, IDocument), via getDocument(Object):\n";
  Printf.printf "  unrestricted signature graph:        %d results\n" (List.length r1);
  Printf.printf "  Object/String params restricted:     %d results\n" (List.length r2);
  Printf.printf "  + mined argument examples:           %d results (%d sites, %d edges)\n"
    (List.length r3) stats.Mining.Objparam.sites stats.Mining.Objparam.edges_added

(* ------------------------------------------------------------------ *)
(* Query acceleration: reachability pruning and the LRU query cache    *)
(* ------------------------------------------------------------------ *)

let section_cache () =
  rule "Query acceleration — reachability pruning and the LRU query cache";
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let qs =
    List.map (fun (p : Problems.t) -> Query.query p.Problems.tin p.Problems.tout)
      Problems.all
  in
  let nq = List.length qs in
  (* Reachability pruning, measured without any caching. *)
  let base_t, baseline =
    time_of (fun () -> List.map (fun q -> Query.run ~graph ~hierarchy q) qs)
  in
  let build_t, reach = time_of (fun () -> Prospector.Reach.build graph) in
  let pruned_t, pruned =
    time_of (fun () -> List.map (fun q -> Query.run ~reach ~graph ~hierarchy q) qs)
  in
  let n_nodes = Prospector.Reach.node_count reach in
  let cone_fractions =
    List.filter_map
      (fun (q : Query.t) ->
        Option.map
          (fun dst ->
            float_of_int (Prospector.Reach.cone_size reach ~target:dst)
            /. float_of_int n_nodes)
          (Prospector.Graph.find_type_node graph q.Query.tout))
      qs
  in
  let avg_cone =
    List.fold_left ( +. ) 0.0 cone_fractions
    /. float_of_int (max 1 (List.length cone_fractions))
  in
  Printf.printf "reach index: %d nodes, %d SCCs, built in %.4f s\n" n_nodes
    (Prospector.Reach.scc_count reach) build_t;
  Printf.printf "average viable cone: %.1f%% of the graph\n" (100.0 *. avg_cone);
  Printf.printf "Table 1 workload (%d queries), uncached:\n" nq;
  Printf.printf "  unpruned: %.4f s    pruned: %.4f s    speedup %.2fx\n" base_t pruned_t
    (base_t /. pruned_t);
  Printf.printf "  pruned results identical to unpruned: %b\n" (baseline = pruned);
  (* The same pruning measurement on a large layered synthetic graph, where
     the viable cone is a small fraction of the graph and the prune has room
     to work (the curated graph is small and dense, so its cones are wide
     and the engine falls back to the unfiltered search there). *)
  let synth_h = Corpusgen.Workload.layered_api ~classes:2000 in
  let synth_g = Sig_graph.build synth_h in
  let synth_qs = Corpusgen.Workload.random_queries synth_h synth_g ~count:40 ~seed:23 in
  let sbase_t, sbase =
    time_of (fun () ->
        List.map (fun q -> Query.run ~graph:synth_g ~hierarchy:synth_h q) synth_qs)
  in
  let sbuild_t, synth_reach = time_of (fun () -> Prospector.Reach.build synth_g) in
  let spruned_t, spruned =
    time_of (fun () ->
        List.map
          (fun q -> Query.run ~reach:synth_reach ~graph:synth_g ~hierarchy:synth_h q)
          synth_qs)
  in
  let sn = Prospector.Reach.node_count synth_reach in
  let scones =
    List.filter_map
      (fun (q : Query.t) ->
        Option.map
          (fun dst ->
            float_of_int (Prospector.Reach.cone_size synth_reach ~target:dst)
            /. float_of_int sn)
          (Prospector.Graph.find_type_node synth_g q.Query.tout))
      synth_qs
  in
  let savg_cone =
    List.fold_left ( +. ) 0.0 scones /. float_of_int (max 1 (List.length scones))
  in
  Printf.printf
    "synthetic graph (%d nodes, %d queries): average viable cone %.1f%%\n" sn
    (List.length synth_qs) (100.0 *. savg_cone);
  Printf.printf
    "  unpruned: %.4f s    pruned: %.4f s    speedup %.2fx (index built in %.4f s)\n"
    sbase_t spruned_t (sbase_t /. spruned_t) sbuild_t;
  Printf.printf "  pruned results identical to unpruned: %b\n" (sbase = spruned);
  (* Unsolvable queries — the common case when exploring an unfamiliar API.
     Unpruned each costs a full search that finds nothing; the index rejects
     them with one bitset probe. *)
  let miss_qs = Corpusgen.Workload.random_misses synth_g ~count:40 ~seed:29 in
  let mbase_t, mbase =
    time_of (fun () ->
        List.map (fun q -> Query.run ~graph:synth_g ~hierarchy:synth_h q) miss_qs)
  in
  let mpruned_t, mpruned =
    time_of (fun () ->
        List.map
          (fun q -> Query.run ~reach:synth_reach ~graph:synth_g ~hierarchy:synth_h q)
          miss_qs)
  in
  Printf.printf "unsolvable queries (%d), O(1) rejection:\n" (List.length miss_qs);
  Printf.printf "  unpruned: %.4f s    pruned: %.4f s    speedup %.0fx\n" mbase_t
    mpruned_t (mbase_t /. mpruned_t);
  Printf.printf "  pruned results identical to unpruned (all empty): %b\n"
    (mbase = mpruned && List.for_all (fun r -> r = []) mpruned);
  (* The LRU cache: one cold pass, then many warm passes. *)
  let engine = Query.engine ~graph ~hierarchy () in
  let cold_t, cold = time_of (fun () -> Query.run_batch engine qs) in
  let warm_passes = 100 in
  let warm_total, warm =
    time_of (fun () ->
        let last = ref [] in
        for _ = 1 to warm_passes do
          last := Query.run_batch engine qs
        done;
        !last)
  in
  let warm_t = warm_total /. float_of_int warm_passes in
  let speedup = cold_t /. warm_t in
  Printf.printf "cache: cold pass %.4f s; warm pass %.6f s (avg of %d); speedup %.0fx\n"
    cold_t warm_t warm_passes speedup;
  Printf.printf "  warm results identical to uncached baseline: %b\n"
    (List.map snd warm = baseline && List.map snd cold = baseline);
  Printf.printf "  %s\n"
    (Prospector.Stats.cache_to_string (Query.engine_stats engine));
  let json =
    Printf.sprintf
      "{\n\
      \  \"queries\": %d,\n\
      \  \"unpruned_s\": %.6f,\n\
      \  \"pruned_s\": %.6f,\n\
      \  \"prune_speedup\": %.3f,\n\
      \  \"reach_build_s\": %.6f,\n\
      \  \"reach_nodes\": %d,\n\
      \  \"reach_sccs\": %d,\n\
      \  \"avg_cone_fraction\": %.4f,\n\
      \  \"cold_s\": %.6f,\n\
      \  \"warm_s\": %.6f,\n\
      \  \"warm_passes\": %d,\n\
      \  \"cache_speedup\": %.1f,\n\
      \  \"synthetic\": {\n\
      \    \"nodes\": %d,\n\
      \    \"queries\": %d,\n\
      \    \"unpruned_s\": %.6f,\n\
      \    \"pruned_s\": %.6f,\n\
      \    \"prune_speedup\": %.3f,\n\
      \    \"reach_build_s\": %.6f,\n\
      \    \"avg_cone_fraction\": %.4f,\n\
      \    \"miss_queries\": %d,\n\
      \    \"miss_unpruned_s\": %.6f,\n\
      \    \"miss_pruned_s\": %.6f,\n\
      \    \"miss_speedup\": %.1f\n\
      \  }\n\
       }\n"
      nq base_t pruned_t (base_t /. pruned_t) build_t n_nodes
      (Prospector.Reach.scc_count reach)
      avg_cone cold_t warm_t warm_passes speedup sn (List.length synth_qs) sbase_t
      spruned_t (sbase_t /. spruned_t) sbuild_t savg_cone (List.length miss_qs)
      mbase_t mpruned_t (mbase_t /. mpruned_t)
  in
  write_bench ~model_methods:(hier_methods hierarchy) "BENCH_cache.json" json

(* ------------------------------------------------------------------ *)
(* Analyzer: verifier overhead and lint pass timings                   *)
(* ------------------------------------------------------------------ *)

(* What does ?verify cost per query, and what do the standalone passes cost
   over everything we ship? The verifier re-typechecks every ranked chain,
   so its price scales with results per query, not with search effort — on
   the Table 1 workload it should be noise next to the search itself. *)

let section_analysis () =
  rule "Analyzer — verifier overhead and lint pass timings";
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let qs =
    List.map (fun (p : Problems.t) -> Query.query p.Problems.tin p.Problems.tout)
      Problems.all
  in
  let nq = List.length qs in
  let passes = 10 in
  let run_passes f =
    time_of (fun () ->
        let last = ref [] in
        for _ = 1 to passes do
          last := List.map f qs
        done;
        !last)
  in
  let plain_t, plain = run_passes (fun q -> Query.run ~graph ~hierarchy q) in
  let v = Query.verifier (Analysis.Verify.sound hierarchy) in
  let verified_t, verified =
    run_passes (fun q -> Query.run ~verify:v ~graph ~hierarchy q)
  in
  let per_q t = t *. 1000.0 /. float_of_int (passes * nq) in
  Printf.printf "Table 1 workload (%d queries, %d passes):\n" nq passes;
  Printf.printf "  unverified: %.3f ms/query    verified: %.3f ms/query    overhead %.1f%%\n"
    (per_q plain_t) (per_q verified_t)
    (100.0 *. ((verified_t /. plain_t) -. 1.0));
  Printf.printf "  chains checked: %d, filtered as unsound: %d\n" v.Query.vchecked
    v.Query.vfiltered;
  Printf.printf "  verified results identical to unverified: %b\n" (plain = verified);
  (* Standalone pass timings over the shipped model, corpus, and solutions. *)
  let chains =
    List.concat plain |> List.map (fun (r : Query.result) -> r.Query.jungloid)
  in
  let nchains = List.length chains in
  let verify_t, _ =
    time_of (fun () ->
        List.iter (fun j -> ignore (Analysis.Verify.check hierarchy j)) chains)
  in
  let gencheck_t, _ =
    time_of (fun () ->
        List.iter (fun j -> ignore (Analysis.Gencheck.check hierarchy j)) chains)
  in
  let apilint_t, api_ds = time_of (fun () -> Analysis.Apilint.lint ~graph hierarchy) in
  let prog =
    Minijava.Resolve.parse_program ~api:hierarchy Apidata.Api.corpus_sources
  in
  let corpuslint_t, corpus_ds =
    time_of (fun () -> Analysis.Corpuslint.lint_program prog)
  in
  Printf.printf "standalone passes:\n";
  Printf.printf "  verify:     %d chains in %.4f s (%.1f us/chain)\n" nchains verify_t
    (1e6 *. verify_t /. float_of_int (max 1 nchains));
  Printf.printf "  gencheck:   %d chains in %.4f s (%.1f us/chain)\n" nchains
    gencheck_t
    (1e6 *. gencheck_t /. float_of_int (max 1 nchains));
  Printf.printf "  apilint:    model+graph in %.4f s (%d findings)\n" apilint_t
    (List.length api_ds);
  Printf.printf "  corpuslint: %d methods in %.4f s (%d findings)\n"
    (List.length prog.Minijava.Tast.methods)
    corpuslint_t (List.length corpus_ds);
  let json =
    Printf.sprintf
      "{\n\
      \  \"queries\": %d,\n\
      \  \"passes\": %d,\n\
      \  \"unverified_ms_per_query\": %.4f,\n\
      \  \"verified_ms_per_query\": %.4f,\n\
      \  \"verify_overhead_fraction\": %.4f,\n\
      \  \"chains_checked\": %d,\n\
      \  \"chains_filtered\": %d,\n\
      \  \"solutions\": %d,\n\
      \  \"verify_us_per_chain\": %.2f,\n\
      \  \"gencheck_us_per_chain\": %.2f,\n\
      \  \"apilint_s\": %.6f,\n\
      \  \"apilint_findings\": %d,\n\
      \  \"corpuslint_s\": %.6f,\n\
      \  \"corpuslint_findings\": %d\n\
       }\n"
      nq passes (per_q plain_t) (per_q verified_t)
      ((verified_t /. plain_t) -. 1.0)
      v.Query.vchecked v.Query.vfiltered nchains
      (1e6 *. verify_t /. float_of_int (max 1 nchains))
      (1e6 *. gencheck_t /. float_of_int (max 1 nchains))
      apilint_t (List.length api_ds) corpuslint_t (List.length corpus_ds)
  in
  write_bench ~model_methods:(hier_methods hierarchy) "BENCH_analysis.json" json

(* ------------------------------------------------------------------ *)
(* Server: warm-daemon throughput vs one-shot CLI cost                 *)
(* ------------------------------------------------------------------ *)

(* The daemon's reason to exist, in numbers: a one-shot CLI invocation pays
   the full world build (API load, graph, mining) for a single answer; the
   warm daemon pays it once and amortises. Latencies are measured
   client-side over a real loopback socket, so they include the protocol
   and transport, not just the engine. *)

let section_server () =
  rule "Server — warm-daemon throughput vs one-shot CLI cost";
  let module Proto = Prospector_server.Proto in
  let module Service = Prospector_server.Service in
  let module Server = Prospector_server.Server in
  let q0 = Query.query "void" "org.eclipse.ui.texteditor.DocumentProviderRegistry" in
  let oneshot_t, _ =
    time_of (fun () ->
        let h = Japi.Loader.load_files Apidata.Api.api_sources in
        let g = Sig_graph.build h in
        ignore
          (Mining.Enrich.enrich g
             (Minijava.Resolve.parse_program ~api:h Apidata.Api.corpus_sources));
        ignore (Query.run ~graph:g ~hierarchy:h q0))
  in
  Printf.printf "one-shot CLI cost (load + build + mine + 1 query): %.4f s\n" oneshot_t;
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let service = Service.create ~engine:(Query.engine ~graph ~hierarchy ()) () in
  let config = { Server.default_config with Server.port = 0; workers = 4 } in
  let srv = Server.create ~config service in
  Server.start srv;
  let port = Server.port srv in
  let lines =
    List.filteri (fun i _ -> i < 6) Problems.all
    |> List.map (fun (p : Problems.t) ->
           Proto.to_string
             (Proto.envelope_to_json
                {
                  Proto.id = Proto.Null;
                  req =
                    Proto.Query
                      {
                        tin = p.Problems.tin;
                        tout = p.Problems.tout;
                        max_results = None;
                        slack = None;
                        strategy = None;
                        ranking = None;
                        protocol = None;
                        cluster = false;
                      };
                }))
    |> Array.of_list
  in
  let run_client n_requests =
    let ic, oc =
      Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    in
    let lats = ref [] in
    for i = 0 to n_requests - 1 do
      let line = lines.(i mod Array.length lines) in
      let t0 = Unix.gettimeofday () in
      output_string oc line;
      output_char oc '\n';
      flush oc;
      ignore (input_line ic);
      lats := (Unix.gettimeofday () -. t0) :: !lats
    done;
    (try Unix.shutdown_connection ic with _ -> ());
    close_in_noerr ic;
    !lats
  in
  (* prime the daemon's query caches so we measure the steady state *)
  ignore (run_client (Array.length lines));
  let requests = 300 in
  let seq_t, seq_lats = time_of (fun () -> run_client requests) in
  let seq_rps = float_of_int requests /. seq_t in
  let seq_p50 = percentile seq_lats 0.50 *. 1000.0 in
  let seq_p95 = percentile seq_lats 0.95 *. 1000.0 in
  Printf.printf
    "warm daemon, 1 client:   %d requests in %.3f s  (%.0f req/s, p50 %.3f ms, p95 %.3f ms)\n"
    requests seq_t seq_rps seq_p50 seq_p95;
  let n_clients = 4 in
  let per_client = 100 in
  let results = Array.make n_clients [] in
  let conc_t, () =
    time_of (fun () ->
        let ts =
          List.init n_clients (fun k ->
              Thread.create (fun () -> results.(k) <- run_client per_client) ())
        in
        List.iter Thread.join ts)
  in
  let conc_n = n_clients * per_client in
  let conc_rps = float_of_int conc_n /. conc_t in
  let conc_lats = List.concat (Array.to_list results) in
  let conc_p50 = percentile conc_lats 0.50 *. 1000.0 in
  let conc_p95 = percentile conc_lats 0.95 *. 1000.0 in
  Printf.printf
    "warm daemon, %d clients:  %d requests in %.3f s  (%.0f req/s, p50 %.3f ms, p95 %.3f ms)\n"
    n_clients conc_n conc_t conc_rps conc_p50 conc_p95;
  let speedup = oneshot_t /. (seq_t /. float_of_int requests) in
  Printf.printf "per-request speedup over one-shot CLI: %.0fx\n" speedup;
  Server.shutdown srv;
  Server.wait srv;
  let json =
    Printf.sprintf
      "{\n\
      \  \"oneshot_s\": %.6f,\n\
      \  \"distinct_queries\": %d,\n\
      \  \"sequential\": {\n\
      \    \"requests\": %d,\n\
      \    \"elapsed_s\": %.6f,\n\
      \    \"req_per_s\": %.1f,\n\
      \    \"p50_ms\": %.4f,\n\
      \    \"p95_ms\": %.4f\n\
      \  },\n\
      \  \"concurrent\": {\n\
      \    \"clients\": %d,\n\
      \    \"requests\": %d,\n\
      \    \"elapsed_s\": %.6f,\n\
      \    \"req_per_s\": %.1f,\n\
      \    \"p50_ms\": %.4f,\n\
      \    \"p95_ms\": %.4f\n\
      \  },\n\
      \  \"speedup_vs_oneshot\": %.1f\n\
       }\n"
      oneshot_t (Array.length lines) requests seq_t seq_rps seq_p50 seq_p95
      n_clients conc_n conc_t conc_rps conc_p50 conc_p95 speedup
  in
  write_bench ~model_methods:(hier_methods (Apidata.Api.hierarchy ())) "BENCH_server.json" json

(* ------------------------------------------------------------------ *)
(* Domain-parallel engine: CSR snapshots and multicore fan-out         *)
(* ------------------------------------------------------------------ *)

let section_parallel () =
  rule "Domain-parallel engine — CSR snapshots and multicore fan-out";
  let module Pool = Prospector_parallel.Pool in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host: %d recommended domain(s)%s\n" cores
    (if cores = 1 then " — expect no parallel speedup on this machine" else "");
  (* CSR frozen view vs the adjacency-list graph, uncached and unpruned,
     over a synthetic workload large enough for the search to dominate. *)
  let h = Corpusgen.Workload.layered_api ~classes:2000 in
  let g = Sig_graph.build h in
  let qs = Corpusgen.Workload.random_queries h g ~count:40 ~seed:31 in
  let nq = List.length qs in
  let passes = 3 in
  let run_passes f =
    time_of (fun () ->
        let last = ref [] in
        for _ = 1 to passes do
          last := List.map f qs
        done;
        !last)
  in
  let list_t, list_rs = run_passes (fun q -> Query.run ~graph:g ~hierarchy:h q) in
  let freeze_t, frozen = time_of (fun () -> Prospector.Graph.freeze g) in
  let csr_t, csr_rs =
    run_passes (fun q -> Query.run ~frozen ~graph:g ~hierarchy:h q)
  in
  let csr_identical = list_rs = csr_rs in
  Printf.printf
    "CSR vs adjacency list (%d queries x %d passes, uncached):\n" nq passes;
  Printf.printf
    "  list: %.4f s    csr: %.4f s    speedup %.2fx (freeze cost %.4f s)\n"
    list_t csr_t (list_t /. csr_t) freeze_t;
  Printf.printf "  csr results identical to list: %b\n" csr_identical;
  (* Batch fan-out at 1/2/4 domains: a fresh engine per job count so every
     run pays the same cold misses; the reach-index build inside the first
     batch uses the same pool. *)
  let batch_at jobs =
    let engine =
      Query.engine ~pool:(Pool.create ~jobs) ~graph:g ~hierarchy:h ()
    in
    time_of (fun () -> Query.run_batch engine qs)
  in
  let b1_t, b1 = batch_at 1 in
  let b2_t, b2 = batch_at 2 in
  let b4_t, b4 = batch_at 4 in
  let batch_identical = b1 = b2 && b2 = b4 in
  Printf.printf "batch (cold engine, %d queries):\n" nq;
  List.iter
    (fun (jobs, t) ->
      Printf.printf "  jobs=%d: %.4f s  (%.0f queries/s)\n" jobs t
        (float_of_int nq /. t))
    [ (1, b1_t); (2, b2_t); (4, b4_t) ];
  Printf.printf "  4-domain speedup: %.2fx    byte-identical across jobs: %b\n"
    (b1_t /. b4_t) batch_identical;
  (* Mining fan-out over the bundled corpus. *)
  let hierarchy = Apidata.Api.hierarchy () in
  let prog =
    Minijava.Resolve.parse_program ~api:hierarchy Apidata.Api.corpus_sources
  in
  let df = Mining.Dataflow.build prog in
  let mine_at jobs =
    time_of (fun () ->
        let last = ref [] in
        for _ = 1 to 20 do
          last := Mining.Extract.extract ~pool:(Pool.create ~jobs) df
        done;
        !last)
  in
  let m1_t, m1 = mine_at 1 in
  let m4_t, m4 = mine_at 4 in
  let mining_identical = m1 = m4 in
  Printf.printf "mining (%d examples x 20 passes):\n" (List.length m1);
  Printf.printf
    "  jobs=1: %.4f s    jobs=4: %.4f s    speedup %.2fx    identical: %b\n"
    m1_t m4_t (m1_t /. m4_t) mining_identical;
  let json =
    Printf.sprintf
      "{\n\
      \  \"cores\": %d,\n\
      \  \"csr\": {\n\
      \    \"queries\": %d,\n\
      \    \"passes\": %d,\n\
      \    \"list_s\": %.6f,\n\
      \    \"csr_s\": %.6f,\n\
      \    \"speedup\": %.3f,\n\
      \    \"freeze_s\": %.6f,\n\
      \    \"identical\": %b\n\
      \  },\n\
      \  \"batch\": {\n\
      \    \"jobs1_s\": %.6f,\n\
      \    \"jobs2_s\": %.6f,\n\
      \    \"jobs4_s\": %.6f,\n\
      \    \"speedup_4v1\": %.3f,\n\
      \    \"identical\": %b\n\
      \  },\n\
      \  \"mining\": {\n\
      \    \"jobs1_s\": %.6f,\n\
      \    \"jobs4_s\": %.6f,\n\
      \    \"speedup_4v1\": %.3f,\n\
      \    \"identical\": %b\n\
      \  }\n\
       }\n"
      cores nq passes list_t csr_t (list_t /. csr_t) freeze_t csr_identical
      b1_t b2_t b4_t (b1_t /. b4_t) batch_identical m1_t m4_t (m1_t /. m4_t)
      mining_identical
  in
  write_bench ~model_methods:(hier_methods h) "BENCH_parallel.json" json


(* ------------------------------------------------------------------ *)
(* Best-first top-k vs exhaustive enumeration                          *)
(* ------------------------------------------------------------------ *)

(* The laziness claim of the BestFirst strategy, measured: identical output
   to the exhaustive oracle at every k, while materializing candidates
   proportional to k instead of the full within-budget path set. The
   `identical` booleans gate `make check` — a false here exits nonzero. *)
let section_topk () =
  rule "Best-first top-k vs exhaustive enumeration";
  let h = Corpusgen.Workload.layered_api ~classes:2000 in
  let g = Sig_graph.build h in
  let frozen = Prospector.Graph.freeze g in
  let qs = Corpusgen.Workload.random_queries h g ~count:40 ~seed:31 in
  let nq = List.length qs in
  let passes = 3 in
  let run_at ~strategy ~k =
    let settings = { Query.default_settings with max_results = k; strategy } in
    time_of (fun () ->
        let last = ref [] in
        for _ = 1 to passes do
          last :=
            List.map
              (fun q -> Query.run_info ~settings ~frozen ~graph:g ~hierarchy:h q)
              qs
        done;
        !last)
  in
  Printf.printf
    "layered synthetic (%d queries x %d passes, frozen CSR, uncached):\n" nq
    passes;
  let all_identical = ref true in
  let rows =
    List.map
      (fun k ->
        let ex_t, ex = run_at ~strategy:Query.Exhaustive ~k in
        let bf_t, bf = run_at ~strategy:Query.BestFirst ~k in
        let identical = List.map fst ex = List.map fst bf in
        if not identical then all_identical := false;
        let candidates rs =
          List.fold_left
            (fun acc (_, (i : Query.info)) -> acc + i.Query.candidates)
            0 rs
        in
        let ex_c = candidates ex and bf_c = candidates bf in
        Printf.printf
          "  k=%-4d exhaustive: %.4f s (%6d candidates)   best-first: %.4f s \
           (%6d candidates)   speedup %.2fx   identical: %b\n"
          k ex_t ex_c bf_t bf_c (ex_t /. bf_t) identical;
        (k, ex_t, ex_c, bf_t, bf_c, identical))
      [ 1; 10; 100 ]
  in
  Printf.printf "  all identical: %b\n" !all_identical;
  let json =
    Printf.sprintf "{\n  \"queries\": %d,\n  \"passes\": %d,\n  \"rows\": [\n%s\n  ],\n  \"identical\": %b\n}\n"
      nq passes
      (String.concat ",\n"
         (List.map
            (fun (k, ex_t, ex_c, bf_t, bf_c, id) ->
              Printf.sprintf
                "    {\"k\": %d, \"exhaustive_s\": %.6f, \
                 \"exhaustive_candidates\": %d, \"best_first_s\": %.6f, \
                 \"best_first_candidates\": %d, \"identical\": %b}"
                k ex_t ex_c bf_t bf_c id)
            rows))
      !all_identical
  in
  write_bench ~model_methods:(hier_methods h) "BENCH_topk.json" json;
  if not !all_identical then begin
    prerr_endline
      "error: best-first results diverged from the exhaustive oracle";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Refine sessions — questions to convergence and probe latency        *)
(* ------------------------------------------------------------------ *)

(* Every Table 1 problem gets one refine session driven by the simulated
   programmer (desired = the rank-1 result), measuring how many probes it
   takes to converge and how long each probe selection costs — probe
   selection runs inside Session.start and Session.answer, so those two
   calls are the latency samples. The gate: refine must never change the
   answer (to_rank1 on every session) and must stay close to a binary
   search, at most ceil(log2 k) + 2 questions. The same loop runs on a
   layered synthetic world to keep the latency numbers honest beyond the
   bundled model's size. *)

module Esession = Prospector_eval.Session

let section_refine () =
  rule "Refine sessions — questions to convergence and probe latency";
  let probe_samples = ref [] in
  (* One full session; returns (k, questions, to_rank1, live_at_end). *)
  let run_session (results : Query.result list) =
    match results with
    | [] -> None
    | desired :: _ ->
        let candidates =
          List.map (fun result -> { Esession.source = None; result }) results
        in
        let timed f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          probe_samples := (Unix.gettimeofday () -. t0) :: !probe_samples;
          r
        in
        let rec loop sess =
          match Simstudy.Programmer.answer_probe sess ~desired with
          | None -> sess
          | Some choice -> (
              match timed (fun () -> Esession.answer sess ~choice) with
              | Ok sess' -> loop sess'
              | Error _ -> sess)
        in
        let final = loop (timed (fun () -> Esession.start candidates)) in
        Some
          ( List.length candidates,
            Esession.questions_asked final,
            Simstudy.Programmer.same_result
              (Esession.best final).Esession.result desired,
            List.length (Esession.live final) )
  in
  let question_bound k =
    int_of_float (ceil (log (float_of_int (max 1 k)) /. log 2.0)) + 2
  in
  (* -- Table 1 ------------------------------------------------------ *)
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let failed = ref false in
  let table1_rows =
    List.filter_map
      (fun (p : Problems.t) ->
        let results =
          Query.run ~graph ~hierarchy (Query.query p.Problems.tin p.Problems.tout)
        in
        match run_session results with
        | None -> None
        | Some (k, questions, to_rank1, live) ->
            let bound = question_bound k in
            let ok = to_rank1 && questions <= bound in
            if not ok then failed := true;
            Printf.printf
              "  #%-2d k=%-3d questions=%d (bound %d)  live at end=%d  \
               survivor is rank-1: %b%s\n"
              p.Problems.id k questions bound live to_rank1
              (if ok then "" else "   FAIL");
            Some (p.Problems.id, k, questions, bound, to_rank1, live))
      Problems.all
  in
  (* -- layered synthetic world -------------------------------------- *)
  let h = Corpusgen.Workload.layered_api ~classes:500 in
  let g = Sig_graph.build h in
  let qs = Corpusgen.Workload.random_queries h g ~count:20 ~seed:7 in
  let layered =
    List.filter_map
      (fun q -> run_session (Query.run ~graph:g ~hierarchy:h q))
      qs
  in
  let layered_sessions = List.length layered in
  let layered_max_q =
    List.fold_left (fun acc (_, q, _, _) -> max acc q) 0 layered
  in
  let layered_mean_q =
    if layered = [] then 0.0
    else
      float_of_int (List.fold_left (fun acc (_, q, _, _) -> acc + q) 0 layered)
      /. float_of_int layered_sessions
  in
  Printf.printf
    "  layered (%d classes): %d/%d queries gave results; questions max=%d \
     mean=%.2f\n"
    500 layered_sessions (List.length qs) layered_max_q layered_mean_q;
  (* -- probe latency ------------------------------------------------- *)
  let samples = List.sort compare !probe_samples in
  let n = List.length samples in
  let pct p =
    if n = 0 then 0.0
    else List.nth samples (min (n - 1) (int_of_float (float_of_int n *. p)))
  in
  let ms s = s *. 1000.0 in
  Printf.printf
    "  probe selection: %d samples, p50 %.3f ms, p95 %.3f ms, max %.3f ms\n" n
    (ms (pct 0.50)) (ms (pct 0.95))
    (ms (match List.rev samples with [] -> 0.0 | x :: _ -> x));
  let json =
    Printf.sprintf
      "{\n\
      \  \"table1\": [\n%s\n  ],\n\
      \  \"layered\": {\"classes\": %d, \"queries\": %d, \"sessions\": %d, \
       \"max_questions\": %d, \"mean_questions\": %.3f},\n\
      \  \"probe_latency_ms\": {\"samples\": %d, \"p50\": %.4f, \"p95\": \
       %.4f},\n\
      \  \"ok\": %b\n\
       }\n"
      (String.concat ",\n"
         (List.map
            (fun (id, k, questions, bound, to_rank1, live) ->
              Printf.sprintf
                "    {\"id\": %d, \"k\": %d, \"questions\": %d, \"bound\": \
                 %d, \"to_rank1\": %b, \"live_at_end\": %d}"
                id k questions bound to_rank1 live)
            table1_rows))
      500 (List.length qs) layered_sessions layered_max_q layered_mean_q n
      (ms (pct 0.50)) (ms (pct 0.95))
      (not !failed)
  in
  write_bench ~model_methods:(hier_methods hierarchy) "BENCH_refine.json" json;
  if !failed then begin
    prerr_endline
      "error: a refine session changed the answer or overran ceil(log2 k) + \
       2 questions";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Usage-weighted ranking vs the paper order                           *)
(* ------------------------------------------------------------------ *)

(* MRR and rank-of-known-answer deltas for the corpus-mined edge costs, on
   the two workloads with known desired solutions: the Table 1 problems
   (whose idioms come from the bundled corpus the model is mined from) and
   a Truthgen ground-truth world. On both, BestFirst+Mined is re-checked
   byte-for-byte against Exhaustive+Mined — any divergence exits nonzero,
   making this the mined counterpart of the `topk` equivalence gate inside
   `make check`. *)
let section_rank () =
  rule "Usage-weighted ranking vs the paper order";
  let identical = ref true in
  let reciprocal = function Some r -> 1.0 /. float_of_int r | None -> 0.0 in
  let mrr ranks =
    List.fold_left (fun a r -> a +. reciprocal r) 0.0 ranks
    /. float_of_int (max 1 (List.length ranks))
  in
  (* -- Table 1 ------------------------------------------------------ *)
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  let edge_cost = Mining.Usage.edge_cost (Apidata.Api.usage ()) in
  let mined_settings = { Query.default_settings with ranking = Query.Mined } in
  let paper = Problems.run_all ~graph ~hierarchy () in
  let mined =
    Problems.run_all ~settings:mined_settings ~edge_cost ~graph ~hierarchy ()
  in
  let mined_ex =
    Problems.run_all
      ~settings:{ mined_settings with strategy = Query.Exhaustive }
      ~edge_cost ~graph ~hierarchy ()
  in
  let codes (m : Problems.measured) =
    List.map (fun (r : Query.result) -> r.Query.code) m.Problems.results
  in
  List.iter2
    (fun bf ex -> if codes bf <> codes ex then identical := false)
    mined mined_ex;
  let improved = ref 0 and worse = ref 0 in
  let show = function Some r -> string_of_int r | None -> "No" in
  let rows =
    List.map2
      (fun (p : Problems.measured) (m : Problems.measured) ->
        (match (p.Problems.rank, m.Problems.rank) with
        | Some pr, Some mr when mr < pr -> incr improved
        | Some pr, Some mr when mr > pr -> incr worse
        | Some _, None | None, Some _ -> incr worse
        | _ -> ());
        if p.Problems.rank <> m.Problems.rank then
          Printf.printf "  problem %2d: paper rank %-3s mined rank %s\n"
            p.problem.Problems.id (show p.Problems.rank) (show m.Problems.rank);
        (p.problem.Problems.id, p.Problems.rank, m.Problems.rank))
      paper mined
  in
  let rank_of (m : Problems.measured) = m.Problems.rank in
  let t1_paper = mrr (List.map rank_of paper) in
  let t1_mined = mrr (List.map rank_of mined) in
  Printf.printf
    "table 1: MRR paper %.4f -> mined %.4f (%d improved, %d worse, %d rows)\n"
    t1_paper t1_mined !improved !worse (List.length rows);
  (* -- Truthgen ------------------------------------------------------ *)
  let t =
    Corpusgen.Truthgen.generate
      {
        Corpusgen.Truthgen.default_params with
        producers = 12;
        coverage = 0.75;
        seed = 13;
      }
  in
  let prog =
    Minijava.Resolve.parse_program ~api:t.Corpusgen.Truthgen.hierarchy
      t.Corpusgen.Truthgen.corpus
  in
  let tg = Sig_graph.build t.Corpusgen.Truthgen.hierarchy in
  let usage = ref Mining.Usage.empty in
  let _ =
    Mining.Enrich.enrich
      ~on_examples:(fun exs -> usage := Mining.Usage.of_examples exs)
      tg prog
  in
  let t_cost = Mining.Usage.edge_cost !usage in
  let t_settings = { Query.default_settings with slack = 2 } in
  let known_rank i results =
    (* the ground-truth answer: reach producer i's lookup and downcast its
       Object result to the actual model class *)
    let is_known (r : Query.result) =
      let elems = r.Query.jungloid.Prospector.Jungloid.elems in
      List.exists
        (function
          | Prospector.Elem.Instance_call { meth; _ } ->
              String.equal meth.Javamodel.Member.mname
                (Printf.sprintf "lookup%d" i)
          | _ -> false)
        elems
      && List.exists
           (function
             | Prospector.Elem.Downcast { to_; _ } ->
                 String.equal (Javamodel.Jtype.to_string to_)
                   (Corpusgen.Truthgen.model i)
             | _ -> false)
           elems
    in
    let rec go n = function
      | [] -> None
      | r :: rest -> if is_known r then Some n else go (n + 1) rest
    in
    go 1 results
  in
  let run_producer ~settings ?edge_cost i =
    Query.run ~settings ?edge_cost ~graph:tg
      ~hierarchy:t.Corpusgen.Truthgen.hierarchy
      (Query.query Corpusgen.Truthgen.registry (Corpusgen.Truthgen.model i))
  in
  let covered =
    List.filter
      (fun i -> t.Corpusgen.Truthgen.covered.(i))
      (List.init t.Corpusgen.Truthgen.params.Corpusgen.Truthgen.producers
         (fun i -> i))
  in
  let tg_paper =
    List.map (fun i -> known_rank i (run_producer ~settings:t_settings i)) covered
  in
  let tg_mined =
    List.map
      (fun i ->
        let settings = { t_settings with ranking = Query.Mined } in
        let bf = run_producer ~settings ~edge_cost:t_cost i in
        let ex =
          run_producer
            ~settings:{ settings with strategy = Query.Exhaustive }
            ~edge_cost:t_cost i
        in
        let code (r : Query.result) = r.Query.code in
        if List.map code bf <> List.map code ex then identical := false;
        known_rank i bf)
      covered
  in
  let tg_p = mrr tg_paper and tg_m = mrr tg_mined in
  Printf.printf
    "truthgen: MRR of known answer, paper %.4f -> mined %.4f (%d covered \
     producers)\n"
    tg_p tg_m (List.length covered);
  Printf.printf "  best-first+mined identical to exhaustive+mined: %b\n"
    !identical;
  let json =
    Printf.sprintf
      "{\n\
      \  \"table1\": {\n\
      \    \"mrr_paper\": %.6f,\n\
      \    \"mrr_mined\": %.6f,\n\
      \    \"improved\": %d,\n\
      \    \"worse\": %d,\n\
      \    \"rows\": [\n%s\n    ]\n\
      \  },\n\
      \  \"truthgen\": {\n\
      \    \"mrr_paper\": %.6f,\n\
      \    \"mrr_mined\": %.6f,\n\
      \    \"covered_producers\": %d\n\
      \  },\n\
      \  \"identical\": %b\n\
       }\n"
      t1_paper t1_mined !improved !worse
      (String.concat ",\n"
         (List.map
            (fun (id, pr, mr) ->
              let cell = function
                | Some r -> string_of_int r
                | None -> "null"
              in
              Printf.sprintf
                "      {\"problem\": %d, \"paper_rank\": %s, \"mined_rank\": \
                 %s}"
                id (cell pr) (cell mr))
            rows))
      tg_p tg_m (List.length covered) !identical
  in
  write_bench ~model_methods:(hier_methods hierarchy) "BENCH_rank.json" json;
  if not !identical then begin
    prerr_endline
      "error: best-first results diverged from the exhaustive oracle under \
       the mined ranking";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Mined typestate protocols                                           *)
(* ------------------------------------------------------------------ *)

(* Mining cost, lint throughput over the bundled corpus, the overhead a
   protocol-checked query pays at [Warn], and two gates: every Table 1
   solution must vet clean against the bundled model (protocol checking
   must never flag the paper's own answers), and BestFirst must stay
   byte-identical to Exhaustive under [Warn] and [Filter]. *)
let section_proto () =
  rule "Mined typestate protocols";
  let prog = Apidata.Api.program () in
  let graph = Apidata.Api.default_graph () in
  let hierarchy = Apidata.Api.hierarchy () in
  (* -- mining ------------------------------------------------------- *)
  let mine_t, model =
    time_of (fun () ->
        let m = ref Analysis.Protocol.empty in
        for _ = 1 to 10 do
          m := Mining.Protomine.mine prog
        done;
        !m)
  in
  let mine_t = mine_t /. 10.0 in
  Printf.printf
    "mining: %.4f s/corpus (%d types, %d sequences, %d transitions)\n" mine_t
    (List.length (Analysis.Protocol.modeled_types model))
    (Analysis.Protocol.sequence_count model)
    (Analysis.Protocol.transition_count model);
  (* -- lint throughput ---------------------------------------------- *)
  let df = Mining.Dataflow.build prog in
  let seqs = Mining.Protomine.sequences df in
  let lint_passes = 100 in
  let lint_t, findings =
    time_of (fun () ->
        let last = ref [] in
        for _ = 1 to lint_passes do
          last := Analysis.Protolint.check model seqs
        done;
        !last)
  in
  let seqs_per_s =
    float_of_int (lint_passes * List.length seqs) /. lint_t
  in
  Printf.printf
    "lint: %d sequences x %d passes in %.4f s (%.0f sequences/s, %d findings \
     on the corpus itself)\n"
    (List.length seqs) lint_passes lint_t seqs_per_s
    (List.length findings);
  (* -- query overhead at Warn, and the equivalence gates ------------- *)
  let protocol_check j = Analysis.Protolint.violations model j in
  let passes = 5 in
  let run_all ~protocol ~strategy () =
    List.map
      (fun (p : Problems.t) ->
        Query.run
          ~settings:{ Query.default_settings with protocol; strategy }
          ~protocol_check ~graph ~hierarchy
          (Query.query p.Problems.tin p.Problems.tout))
      Problems.all
  in
  let timed ~protocol ~strategy =
    let t, r =
      time_of (fun () ->
          let last = ref [] in
          for _ = 1 to passes do
            last := run_all ~protocol ~strategy ()
          done;
          !last)
    in
    (t /. float_of_int passes, r)
  in
  let off_t, off = timed ~protocol:Query.Off ~strategy:Query.BestFirst in
  let warn_t, warn = timed ~protocol:Query.Warn ~strategy:Query.BestFirst in
  let overhead = (warn_t -. off_t) /. off_t *. 100.0 in
  Printf.printf
    "Table 1 workload: off %.4f s   warn %.4f s   overhead %+.1f%%\n" off_t
    warn_t overhead;
  let results_equal a b =
    List.length a = List.length b
    && List.for_all2
         (fun (x : Query.result) (y : Query.result) ->
           Prospector.Jungloid.equal x.Query.jungloid y.Query.jungloid
           && x.Query.code = y.Query.code)
         a b
  in
  let identical = ref true in
  List.iter
    (fun protocol ->
      let _, ex = timed ~protocol ~strategy:Query.Exhaustive in
      let _, bf = timed ~protocol ~strategy:Query.BestFirst in
      if not (List.for_all2 results_equal ex bf) then identical := false)
    [ Query.Warn; Query.Filter ];
  Printf.printf "best-first = exhaustive under warn and filter: %b\n" !identical;
  (* warn must not perturb the result set either *)
  if not (List.for_all2 results_equal off warn) then identical := false;
  (* -- Table 1 solutions must vet clean ----------------------------- *)
  let flagged =
    List.concat_map
      (fun rs ->
        List.concat_map
          (fun (r : Query.result) ->
            Analysis.Protolint.vet model r.Query.jungloid)
          rs)
      off
  in
  Printf.printf "protocol findings on Table 1 solutions: %d\n"
    (List.length flagged);
  let json =
    Printf.sprintf
      "{\n\
      \  \"mine_s\": %.6f,\n\
      \  \"modeled_types\": %d,\n\
      \  \"sequences\": %d,\n\
      \  \"transitions\": %d,\n\
      \  \"lint_sequences_per_s\": %.1f,\n\
      \  \"corpus_findings\": %d,\n\
      \  \"query_off_s\": %.6f,\n\
      \  \"query_warn_s\": %.6f,\n\
      \  \"warn_overhead_pct\": %.2f,\n\
      \  \"table1_flagged\": %d,\n\
      \  \"identical\": %b\n\
       }\n"
      mine_t
      (List.length (Analysis.Protocol.modeled_types model))
      (Analysis.Protocol.sequence_count model)
      (Analysis.Protocol.transition_count model)
      seqs_per_s
      (List.length findings)
      off_t warn_t overhead
      (List.length flagged)
      !identical
  in
  write_bench ~model_methods:(hier_methods hierarchy) "BENCH_proto.json" json;
  if flagged <> [] then begin
    List.iter
      (fun d -> prerr_endline (Analysis.Diagnostic.to_string d))
      flagged;
    prerr_endline
      "error: the mined protocol model flagged a Table 1 solution";
    exit 1
  end;
  if not !identical then begin
    prerr_endline
      "error: best-first results diverged from the exhaustive oracle under \
       protocol checking";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let section_micro () =
  rule "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let hierarchy = Apidata.Api.hierarchy () in
  let graph = Apidata.Api.default_graph () in
  let prog = Apidata.Api.program () in
  let df = Mining.Dataflow.build prog in
  let examples = Mining.Extract.extract df in
  let parse_q =
    Query.query "org.eclipse.core.resources.IFile" "org.eclipse.jdt.core.dom.ASTNode"
  in
  let tests =
    [
      Test.make ~name:"load_api_model"
        (Staged.stage (fun () -> ignore (Japi.Loader.load_files Apidata.Api.api_sources)));
      Test.make ~name:"build_signature_graph"
        (Staged.stage (fun () -> ignore (Sig_graph.build hierarchy)));
      Test.make ~name:"query_table1_row1"
        (Staged.stage (fun () ->
             ignore
               (Query.run ~graph ~hierarchy
                  (Query.query "java.io.InputStream" "java.io.BufferedReader"))));
      Test.make ~name:"query_parsing_example"
        (Staged.stage (fun () -> ignore (Query.run ~graph ~hierarchy parse_q)));
      Test.make ~name:"assist_multi_source"
        (Staged.stage (fun () ->
             ignore
               (Query.run_multi ~graph ~hierarchy
                  ~vars:
                    [
                      ("ep", Javamodel.Jtype.ref_of_string "org.eclipse.ui.IEditorPart");
                      ( "page",
                        Javamodel.Jtype.ref_of_string "org.eclipse.ui.IWorkbenchPage" );
                    ]
                  ~tout:
                    (Javamodel.Jtype.ref_of_string
                       "org.eclipse.ui.texteditor.IDocumentProvider")
                  ())));
      Test.make ~name:"mine_corpus"
        (Staged.stage (fun () -> ignore (Mining.Extract.extract df)));
      Test.make ~name:"generalize_examples"
        (Staged.stage (fun () -> ignore (Mining.Generalize.run examples)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let test = Test.make_grouped ~name:"prospector" tests in
  let raw = Benchmark.all cfg instances test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ ns ] ->
          if ns > 1_000_000.0 then Printf.printf "%-40s %10.3f ms/run\n" name (ns /. 1e6)
          else Printf.printf "%-40s %10.1f ns/run\n" name ns
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Million-method scale: mega worlds, shards, mmap warm starts         *)
(* ------------------------------------------------------------------ *)

(* Gates `make check` at reduced sizes (10k/100k): a shard or mmap identity
   divergence, or a CSR slowdown at >= 100k methods, exits nonzero. The
   full million-method row is opt-in:

     BENCH_SCALE_SIZES=10000,100000,1000000 dune exec bench/main.exe -- scale

   Above 200k methods the engine runs unpruned — the reach index is the one
   structure whose memory grows faster than the graph — so the shard path
   (which routes through reach) falls back to the whole snapshot there; the
   identity checks still run. *)
let section_scale () =
  rule "Million-method scale — mega worlds, shards, mmap warm starts";
  let sizes =
    match Sys.getenv_opt "BENCH_SCALE_SIZES" with
    | None -> [ 10_000; 100_000 ]
    | Some s ->
        List.filter_map int_of_string_opt
          (String.split_on_char ',' (String.trim s))
  in
  let failed = ref false in
  let measure methods =
    Printf.printf "\n%d methods:\n%!" methods;
    let gen_t, h = time_of (fun () -> Corpusgen.Workload.mega_api ~methods) in
    let build_t, g = time_of (fun () -> Sig_graph.build h) in
    let freeze_t, frozen = time_of (fun () -> Prospector.Graph.freeze g) in
    let nodes = frozen.Prospector.Graph.f_nodes
    and edges = frozen.Prospector.Graph.f_edges in
    Printf.printf
      "  world: %d nodes, %d edges (gen %.2f s, build %.2f s, freeze %.3f s)\n\
       %!"
      nodes edges gen_t build_t freeze_t;
    let reach_t, reach =
      time_of (fun () -> Prospector.Reach.build_frozen frozen)
    in
    (* Solvable pairs sampled in O(1) per probe via the reach index — the
       rejection sampling in [Workload.random_queries] pays a full search
       per probe, which does not survive contact with a million-method
       graph. *)
    let qs =
      let rng = Corpusgen.Rng.create ~seed:31 in
      let real =
        Array.of_list
          (List.filter_map
             (fun (ty, node) ->
               match ty with
               | Javamodel.Jtype.Ref _ -> Some (ty, node)
               | _ -> None)
             (Prospector.Graph.real_nodes g))
      in
      let n = Array.length real in
      let acc = ref [] and got = ref 0 and tries = ref 0 in
      while !got < 20 && !tries < 200_000 do
        incr tries;
        let ti, si = real.(Corpusgen.Rng.int rng n) in
        let to_, di = real.(Corpusgen.Rng.int rng n) in
        if si <> di && Prospector.Reach.mem reach ~src:si ~target:di then begin
          acc := ({ Query.tin = ti; tout = to_ }, (si, di)) :: !acc;
          incr got
        end
      done;
      List.rev !acc
    in
    let pairs = List.map snd qs in
    let qs = List.map fst qs in
    let nq = List.length qs in
    Printf.printf "  reach index: %.2f s; %d solvable queries sampled\n%!"
      reach_t nq;
    (* The flat CSR kernels vs the adjacency-list interpreter: the per-query
       search kernels (backward 0-1 BFS to the target, forward BFS from the
       source), repeated until the measurement is search-bound. End-to-end
       latency is enumeration-bound — the arena explores the same path set
       either way — so it is reported separately below and only checked for
       identity; the kernel ratio is what the flat lanes buy. *)
    let module S = Prospector.Search in
    let passes = max 2 (4_000_000 / ((edges * nq) + 1)) in
    let kern_list_t, _ =
      time_of (fun () ->
          for _ = 1 to passes do
            List.iter
              (fun (si, di) ->
                ignore (S.distances_to g ~target:di : int array);
                ignore (S.distances_from g ~sources:[ si ] : int array))
              pairs
          done)
    in
    let scratch = S.Scratch.create () in
    let kern_csr_t, _ =
      time_of (fun () ->
          for _ = 1 to passes do
            List.iter
              (fun (si, di) ->
                S.Scratch.with_frame scratch (fun () ->
                    ignore (S.Csr.distances_to ~scratch frozen ~target:di
                        : S.Dist.t);
                    ignore
                      (S.Csr.distances_from ~scratch frozen ~sources:[ si ]
                        : S.Dist.t)))
              pairs
          done)
    in
    let csr_speedup = kern_list_t /. kern_csr_t in
    Printf.printf
      "  search kernels (%d passes): csr %.3f s vs list %.3f s — %.2fx\n%!"
      passes kern_csr_t kern_list_t csr_speedup;
    if methods >= 100_000 && csr_speedup < 1.0 then failed := true;
    let list_t, list_rs =
      time_of (fun () ->
          List.map (fun q -> Query.run ~graph:g ~hierarchy:h q) qs)
    in
    let csr_t, csr_rs =
      time_of (fun () -> List.map (fun q -> Query.run ~frozen ~hierarchy:h q) qs)
    in
    let csr_identical = list_rs = csr_rs in
    Printf.printf
      "  end-to-end: csr %.3f s vs list %.3f s (%.2fx), identical %b\n%!"
      csr_t list_t (list_t /. csr_t) csr_identical;
    if not csr_identical then failed := true;
    (* Package-cone sharding: batch fan-out vs the sequential whole-snapshot
       oracle, byte for byte. *)
    let prune = methods <= 200_000 in
    let engine = Query.engine_of_frozen ~prune ~reach ~frozen ~hierarchy:h () in
    let batch_t, batch = time_of (fun () -> Query.run_batch engine qs) in
    let shard_count =
      match Query.engine_shards engine with
      | Some sh -> Prospector.Shard.shard_count sh
      | None -> 0
    in
    let oracle = List.map (fun q -> (q, Query.run ~frozen ~hierarchy:h q)) qs in
    let shard_identical = batch = oracle in
    let qps = float_of_int nq /. batch_t in
    Printf.printf
      "  batch: %.3f s (%.0f queries/s), %d shard(s), identical to oracle %b\n\
       %!"
      batch_t qps shard_count shard_identical;
    if not shard_identical then failed := true;
    (* Warm start: v2 mmap vs a full v1 deserialize + re-freeze — what a
       server restart used to cost to reach the same serving state. *)
    let froz_path = Filename.temp_file "prospector_scale" ".froz" in
    let v1_path = Filename.temp_file "prospector_scale" ".graph" in
    let _, froz_bytes =
      time_of (fun () -> Prospector.Serialize.save_frozen frozen froz_path)
    in
    ignore (Prospector.Serialize.save g v1_path : int);
    let load_frozen_exn ~mmap =
      match Prospector.Serialize.load_frozen ~mmap froz_path with
      | Ok fz -> fz
      | Error e -> failwith (Prospector.Serialize.error_message e)
    in
    let mmap_t, mmap_fz = time_of (fun () -> load_frozen_exn ~mmap:true) in
    let read_t, read_fz = time_of (fun () -> load_frozen_exn ~mmap:false) in
    let v1_t, _ =
      time_of (fun () ->
          Prospector.Graph.freeze (Prospector.Serialize.load v1_path))
    in
    Sys.remove froz_path;
    Sys.remove v1_path;
    let run_on fz =
      List.map (fun q -> Query.run ~frozen:fz ~hierarchy:h q) qs
    in
    let mmap_identical = run_on mmap_fz = csr_rs && run_on read_fz = csr_rs in
    let warm_speedup = v1_t /. mmap_t in
    Printf.printf
      "  warm start: mmap %.4f s, raw read %.4f s, v1 deserialize+freeze \
       %.3f s — %.1fx, identical %b\n\
       %!"
      mmap_t read_t v1_t warm_speedup mmap_identical;
    if not mmap_identical then failed := true;
    Printf.sprintf
      "    {\n\
      \      \"methods\": %d,\n\
      \      \"nodes\": %d,\n\
      \      \"edges\": %d,\n\
      \      \"gen_s\": %.3f,\n\
      \      \"build_s\": %.3f,\n\
      \      \"freeze_s\": %.4f,\n\
      \      \"reach_s\": %.3f,\n\
      \      \"queries\": %d,\n\
      \      \"kernel_passes\": %d,\n\
      \      \"kernel_list_s\": %.4f,\n\
      \      \"kernel_csr_s\": %.4f,\n\
      \      \"csr_speedup\": %.3f,\n\
      \      \"query_list_s\": %.4f,\n\
      \      \"query_csr_s\": %.4f,\n\
      \      \"csr_identical\": %b,\n\
      \      \"batch_s\": %.4f,\n\
      \      \"queries_per_s\": %.1f,\n\
      \      \"shards\": %d,\n\
      \      \"shard_identical\": %b,\n\
      \      \"frozen_bytes\": %d,\n\
      \      \"warm_mmap_s\": %.5f,\n\
      \      \"warm_read_s\": %.5f,\n\
      \      \"v1_deserialize_s\": %.4f,\n\
      \      \"warm_speedup_vs_v1\": %.2f,\n\
      \      \"mmap_identical\": %b\n\
      \    }"
      methods nodes edges gen_t build_t freeze_t reach_t nq passes kern_list_t
      kern_csr_t csr_speedup list_t csr_t csr_identical batch_t qps
      shard_count shard_identical froz_bytes mmap_t read_t v1_t warm_speedup
      mmap_identical
  in
  let rows = List.map measure sizes in
  let json =
    Printf.sprintf "{\n  \"sizes\": [\n%s\n  ]\n}\n" (String.concat ",\n" rows)
  in
  write_bench ~model_methods:(List.fold_left max 0 sizes) "BENCH_scale.json"
    json;
  if !failed then begin
    prerr_endline
      "error: scale gate failed (identity divergence or CSR slowdown at \
       100k+)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Live reload: delta patches vs full rebuilds under query traffic     *)
(* ------------------------------------------------------------------ *)

let section_reload () =
  rule "Live reload — delta-patched snapshots under sustained query traffic";
  let module Delta = Prospector.Delta in
  let module Graph = Prospector.Graph in
  let module Reach = Prospector.Reach in
  let sizes =
    match Sys.getenv_opt "BENCH_RELOAD_SIZES" with
    | None -> [ 10_000; 100_000 ]
    | Some s ->
        List.filter_map int_of_string_opt
          (String.split_on_char ',' (String.trim s))
  in
  let failed = ref false in
  let patch_times = ref [] in
  let measure methods =
    Printf.printf "\n%d methods:\n%!" methods;
    let h = Corpusgen.Workload.mega_api ~methods in
    let g = Sig_graph.build h in
    let frozen = Graph.freeze g in
    let nodes = frozen.Graph.f_nodes and edges = frozen.Graph.f_edges in
    let reach = Reach.build_frozen frozen in
    (* Solvable pairs sampled through the reach index, as in the scale
       section — rejection sampling with a full search per probe does not
       survive contact with graphs this size. *)
    let sampled =
      let rng = Corpusgen.Rng.create ~seed:47 in
      let real =
        Array.of_list
          (List.filter_map
             (fun (ty, node) ->
               match ty with
               | Javamodel.Jtype.Ref _ -> Some (ty, node)
               | _ -> None)
             (Graph.real_nodes g))
      in
      let n = Array.length real in
      let acc = ref [] and got = ref 0 and tries = ref 0 in
      while !got < 12 && !tries < 200_000 do
        incr tries;
        let ti, si = real.(Corpusgen.Rng.int rng n) in
        let to_, di = real.(Corpusgen.Rng.int rng n) in
        if si <> di && Reach.mem reach ~src:si ~target:di then begin
          acc := ({ Query.tin = ti; tout = to_ }, (si, di)) :: !acc;
          incr got
        end
      done;
      List.rev !acc
    in
    let qs = List.map fst sampled and pairs = List.map snd sampled in
    let editable =
      Array.of_list
        (List.filter
           (fun (d : Javamodel.Decl.t) ->
             (not d.Javamodel.Decl.synthetic)
             && Javamodel.Qname.to_string d.Javamodel.Decl.dname
                <> "java.lang.Object")
           (Javamodel.Hierarchy.decls h))
    in
    (* A body-only class edit with already-interned types — the spliceable
       live-edit shape; [k] keeps successive churn edits distinct. *)
    let body_edit k hcur =
      let d0 = editable.(k mod Array.length editable) in
      let d = Javamodel.Hierarchy.find hcur d0.Javamodel.Decl.dname in
      let m =
        Javamodel.Member.meth
          (Printf.sprintf "zzChurn%d" k)
          ~params:[]
          ~ret:(Javamodel.Jtype.Ref d.Javamodel.Decl.dname)
      in
      Delta.Replace_class
        { d with Javamodel.Decl.methods = m :: d.Javamodel.Decl.methods }
    in
    (* The stall a restartless server avoids: cold rebuild to serving state. *)
    let rebuild_s, _ =
      time_of (fun () ->
          let fz = Graph.freeze (Sig_graph.build h) in
          ignore (Reach.build_frozen fz : Reach.t))
    in
    (* Let the rebuild's garbage get collected before timing the patch —
       otherwise the major GC charges the dead rebuild heap to whatever
       allocates next, which is the patch chain below. *)
    Gc.full_major ();
    (* Single-class delta: patch + incremental reach, against the oracle.
       Timed over a short chain of edits — each patched snapshot carries
       fresh tail slack and an unclaimed tail token, so every apply takes
       the append path, as sustained churn does — and the best sample is
       the gate figure (a single sample is at the mercy of a GC major
       slice). The first patch of the chain feeds the oracle below. *)
    let patch_s, patch =
      let best = ref infinity in
      let first = ref None in
      let hcur = ref h and fzcur = ref frozen in
      for k = 0 to 4 do
        let t, p =
          time_of (fun () ->
              match Delta.apply ~hierarchy:!hcur ~frozen:!fzcur [ body_edit k !hcur ] with
              | Ok p -> p
              | Error _ -> failwith "bench delta rejected")
        in
        if !first = None then first := Some p;
        if t < !best then best := t;
        hcur := p.Delta.p_hierarchy;
        fzcur := p.Delta.p_frozen
      done;
      (!best, Option.get !first)
    in
    let reach_patch_s, patched_reach =
      time_of (fun () ->
          Reach.patch ~old:reach ~touched:patch.Delta.p_touched
            patch.Delta.p_frozen)
    in
    let spliced = patch.Delta.p_mode = Delta.Spliced in
    let frozen_identical =
      Delta.frozen_equal patch.Delta.p_frozen
        (Graph.freeze (Sig_graph.build patch.Delta.p_hierarchy))
    in
    let fresh_reach = Reach.build_frozen patch.Delta.p_frozen in
    let reach_identical =
      Reach.node_count patched_reach = Reach.node_count fresh_reach
      && Reach.scc_count patched_reach = Reach.scc_count fresh_reach
      && List.for_all
           (fun (si, di) ->
             Reach.mem patched_reach ~src:si ~target:di
             = Reach.mem fresh_reach ~src:si ~target:di
             && Reach.cone_size patched_reach ~target:di
                = Reach.cone_size fresh_reach ~target:di)
           pairs
    in
    let identical = frozen_identical && reach_identical in
    let patch_total = patch_s +. reach_patch_s in
    (* The sublinearity claim is about the incremental patch itself
       ([Delta.apply]); reach maintenance is reported alongside. *)
    patch_times := (methods, patch_s) :: !patch_times;
    Printf.printf
      "  world: %d nodes, %d edges; cold rebuild to serving state %.3f s\n\
      \  single-class delta: apply %.4f s + reach patch %.4f s = %.4f s \
       (%s, %d touched) — %.0fx vs rebuild; identical %b\n\
       %!"
      nodes edges rebuild_s patch_s reach_patch_s patch_total
      (Delta.mode_string patch.Delta.p_mode)
      patch.Delta.p_touched_count
      (rebuild_s /. patch_total)
      identical;
    if not (identical && spliced) then failed := true;
    if patch_total >= rebuild_s then failed := true;
    (* Query latency under churn: a delta lands every [churn_every]
       queries, and its cost falls on the query blocked behind the swap —
       exactly what a single-pipeline server's tail latency sees. The
       baseline pays a full rebuild at each delta instead. *)
    let n_queries = 120 and churn_every = 12 in
    let qarr = Array.of_list qs in
    let nq = Array.length qarr in
    let churn_run ~reload ~query =
      let lats = ref [] in
      for i = 0 to n_queries - 1 do
        let t0 = Unix.gettimeofday () in
        if i > 0 && i mod churn_every = 0 then reload (i / churn_every);
        query i;
        lats := (Unix.gettimeofday () -. t0) :: !lats
      done;
      !lats
    in
    let inc_lats =
      let engine =
        Query.engine_of_frozen ~prune:true ~reach ~frozen ~hierarchy:h ()
      in
      churn_run
        ~reload:(fun k ->
          let hcur = Query.engine_hierarchy engine in
          let fzcur = Query.engine_frozen engine in
          match Delta.apply ~hierarchy:hcur ~frozen:fzcur [ body_edit k hcur ] with
          | Ok p -> Query.engine_reload engine p
          | Error _ -> failwith "churn delta rejected")
        ~query:(fun i ->
          ignore (Query.run_cached engine qarr.(i mod nq) : Query.result list))
    in
    let reb_lats =
      let hcur = ref (Javamodel.Hierarchy.copy h) in
      let eng =
        ref (Query.engine_of_frozen ~prune:true ~reach ~frozen ~hierarchy:!hcur ())
      in
      churn_run
        ~reload:(fun k ->
          (match body_edit k !hcur with
          | Delta.Replace_class d -> Javamodel.Hierarchy.replace !hcur d
          | _ -> assert false);
          let fz = Graph.freeze (Sig_graph.build !hcur) in
          let r = Reach.build_frozen fz in
          eng :=
            Query.engine_of_frozen ~prune:true ~reach:r ~frozen:fz
              ~hierarchy:!hcur ())
        ~query:(fun i ->
          ignore (Query.run_cached !eng qarr.(i mod nq) : Query.result list))
    in
    let ms lats p = percentile lats p *. 1000.0 in
    let inc_p50 = ms inc_lats 0.50 and inc_p99 = ms inc_lats 0.99 in
    let reb_p50 = ms reb_lats 0.50 and reb_p99 = ms reb_lats 0.99 in
    Printf.printf
      "  churn (%d queries, delta every %d): incremental p50 %.3f ms, p99 \
       %.3f ms; full-rebuild p50 %.3f ms, p99 %.3f ms\n\
       %!"
      n_queries churn_every inc_p50 inc_p99 reb_p50 reb_p99;
    if methods >= 10_000 && inc_p99 >= reb_p99 then failed := true;
    Printf.sprintf
      "    {\n\
      \      \"methods\": %d,\n\
      \      \"nodes\": %d,\n\
      \      \"edges\": %d,\n\
      \      \"rebuild_s\": %.4f,\n\
      \      \"patch_apply_s\": %.5f,\n\
      \      \"patch_reach_s\": %.5f,\n\
      \      \"patch_total_s\": %.5f,\n\
      \      \"patch_mode\": \"%s\",\n\
      \      \"touched_nodes\": %d,\n\
      \      \"patch_speedup_vs_rebuild\": %.1f,\n\
      \      \"identical\": %b,\n\
      \      \"churn_queries\": %d,\n\
      \      \"churn_every\": %d,\n\
      \      \"incremental_p50_ms\": %.4f,\n\
      \      \"incremental_p99_ms\": %.4f,\n\
      \      \"rebuild_p50_ms\": %.4f,\n\
      \      \"rebuild_p99_ms\": %.4f\n\
      \    }"
      methods nodes edges rebuild_s patch_s reach_patch_s patch_total
      (Delta.mode_string patch.Delta.p_mode)
      patch.Delta.p_touched_count
      (rebuild_s /. patch_total)
      identical n_queries churn_every inc_p50 inc_p99 reb_p50 reb_p99
  in
  let rows = List.map measure sizes in
  (* Sublinearity gate: a single-class patch must grow slower than the
     graph. The append path rewrites only the touched rows and copies only
     the O(nodes) offset lanes, so apply time is dominated by the edit, not
     the edge count. *)
  let scaling_ratio, sublinear =
    match List.rev !patch_times with
    | (m1, t1) :: (m2, t2) :: _ when m2 > m1 && t1 > 0.0 ->
        let r = t2 /. t1 in
        (r, r < float_of_int m2 /. float_of_int m1)
    | _ -> (1.0, true)
  in
  if not sublinear then failed := true;
  Printf.printf "\npatch-time scaling ratio across sizes: %.2fx (sublinear %b)\n%!"
    scaling_ratio sublinear;
  let json =
    Printf.sprintf
      "{\n\
      \  \"sizes\": [\n\
       %s\n\
      \  ],\n\
      \  \"patch_scaling_ratio\": %.3f,\n\
      \  \"patch_sublinear\": %b\n\
       }\n"
      (String.concat ",\n" rows) scaling_ratio sublinear
  in
  write_bench ~model_methods:(List.fold_left max 0 sizes) "BENCH_reload.json"
    json;
  if !failed then begin
    prerr_endline
      "error: reload gate failed (oracle divergence, rebuild-beating patch, \
       or superlinear patch time)";
    exit 1
  end

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", section_table1);
    ("extended", section_extended);
    ("perf", section_perf);
    ("figure8", section_figure8);
    ("scaling", section_scaling);
    ("figures", section_figures);
    ("mining_accuracy", section_mining_accuracy);
    ("rank_ablation", section_rank_ablation);
    ("search_bound", section_search_bound);
    ("cap_sweep", section_cap_sweep);
    ("objparam", section_objparam);
    ("cache", section_cache);
    ("analysis", section_analysis);
    ("server", section_server);
    ("parallel", section_parallel);
    ("topk", section_topk);
    ("rank", section_rank);
    ("refine", section_refine);
    ("proto", section_proto);
    ("scale", section_scale);
    ("reload", section_reload);
    ("micro", section_micro);
  ]

let () =
  (* Sections select by bare name or by `--section NAME` (repeatable;
     `--section=NAME` also accepted) — the flag form is what Makefile
     targets and scripts use. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | [ "--section" ] ->
        prerr_endline "error: --section requires a section name";
        exit 1
    | "--section" :: name :: rest -> parse (name :: acc) rest
    | arg :: rest when String.starts_with ~prefix:"--section=" arg ->
        parse (String.sub arg 10 (String.length arg - 10) :: acc) rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  let requested = parse [] (List.tl (Array.to_list Sys.argv)) in
  let unknown =
    List.filter (fun name -> not (List.mem_assoc name sections)) requested
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown section(s) %s; available: %s\n"
      (String.concat " " unknown)
      (String.concat " " (List.map fst sections));
    exit 1
  end;
  let to_run =
    if requested = [] then sections
    else List.filter (fun (name, _) -> List.mem name requested) sections
  in
  List.iter (fun (_, f) -> f ()) to_run
